//! [`MappedSnapshot`]: a read-only `mmap(2)` of a `SANCSRBF` snapshot
//! file, validated once at open and served as zero-copy
//! [`CsrSanView`](crate::view::CsrSanView)s forever after.
//!
//! This is the serving-side read path: where
//! [`SnapshotVault::load_day`](crate::store::SnapshotVault::load_day)
//! deserialises every column into owned arrays (~ms for a 1 MiB day),
//! mapping touches no payload until it is queried — open cost is one
//! `mmap` syscall plus a single validation pass (header + checksum +
//! structure), and after that a snapshot serves any number of threads or
//! processes straight from the page cache with **zero deserialisation and
//! zero per-reader memory**. The kernel shares the physical pages across
//! every process that maps the same day, which is exactly the
//! many-concurrent-readers shape of the Google+ measurement workload.
//!
//! No external crates: the two syscalls are declared as `extern "C"`
//! items directly (the same vendor-shim policy the workspace applies to
//! everything the registry would normally provide).
//!
//! # Safety boundary (the module's `unsafe` contract)
//!
//! All `unsafe` in this module is confined to the `mmap`/`munmap` FFI and
//! the construction of the `&[u8]` over the mapping. The invariants:
//!
//! * **Lifetime** — the byte slice over the mapping is only ever handed
//!   out borrowed from the [`MappedSnapshot`] (`bytes()`, `view()`), so
//!   borrows cannot outlive the mapping; `munmap` runs in `Drop`, after
//!   every borrow is gone by construction.
//! * **Alignment** — `mmap` returns page-aligned addresses (≥ 4096), far
//!   stricter than the 4-byte alignment the column views require.
//! * **Immutability** — the mapping is `PROT_READ | MAP_PRIVATE`: nothing
//!   in this process can write through it, so handing `&[u8]` out is
//!   sound and the type is `Send + Sync` (shared read-only memory).
//! * **File stability** — a `MAP_PRIVATE` read-only mapping does not see
//!   in-place writes by other processes as guaranteed-stable data, and
//!   truncating a mapped file can raise `SIGBUS` on access. The snapshot
//!   store never does either: [`SnapshotVault`](crate::store::SnapshotVault)
//!   writes a temp file and `rename(2)`s it over the old name, which
//!   replaces the directory entry while the mapped *inode* (and its
//!   pages) live on until the last mapping is dropped. Mapping files that
//!   other software mutates in place is outside the contract.
//! * **Validation** — the full [`CsrSanView::new`] validation (the
//!   [`CsrSan::read_from`](crate::CsrSan::read_from) corruption matrix)
//!   runs against the mapped bytes before `open` returns, so a served
//!   view never reinterprets unvalidated bytes.

#![cfg(unix)]

use crate::csr::CsrSan;
use crate::store::{
    array_at, decode_v2_image, StoreError, StoreHeader, FORMAT_VERSION_V2, HEADER_BYTES, MAGIC,
    VERSION_PREFIX_BYTES,
};
use crate::view::{AlignedBytes, CsrSanView};
use std::ffi::{c_int, c_long, c_void};
use std::fmt;
use std::fs;
use std::io::Read;
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};

// Portable POSIX values for the two flags this module uses (identical on
// Linux, macOS and the BSDs, the unix targets this gate admits).
const PROT_READ: c_int = 0x1;
const MAP_PRIVATE: c_int = 0x2;

extern "C" {
    // `offset` is declared `c_long` to match the platform `off_t` on the
    // targets this module admits (Linux 32/64-bit without LFS remapping,
    // 64-bit macOS/BSD) — a fixed i64 would garble the 32-bit C ABI.
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: c_long,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
}

/// How a [`MappedSnapshot`] holds its validated v1-layout bytes.
///
/// v1 files are served straight from the page cache (`Mapped`); v2 files
/// have no v1-layout bytes on disk, so their columns are decoded once at
/// open into an owned, 8-byte-aligned buffer (`Owned`) and served from
/// there with the exact same zero-copy views. Either way, after `open`
/// the bytes are immutable and every accessor is O(1).
enum Backing {
    /// A live `PROT_READ | MAP_PRIVATE` mapping (unmapped on drop).
    Mapped { ptr: *const u8, len: usize },
    /// An owned decoded snapshot image in v1 layout (heap memory).
    Owned(AlignedBytes),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // `self`; the borrow ties the slice to the mapping's lifetime.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(buf) => buf.as_bytes(),
        }
    }
}

impl fmt::Debug for Backing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backing::Mapped { len, .. } => f.debug_struct("Mapped").field("len", len).finish(),
            Backing::Owned(buf) => f.debug_struct("Owned").field("len", &buf.len()).finish(),
        }
    }
}

/// A validated, read-only memory-mapped `SANCSRBF` snapshot file.
///
/// Open once, validate once, then [`view`](MappedSnapshot::view) is O(1)
/// and the views are plain borrowed slices over the page cache. The type
/// is `Send + Sync`; the serving layer shares it as `Arc<MappedSnapshot>`
/// so a cache hit is one atomic increment.
///
/// v2 files cannot be viewed in place (their columns are compressed), so
/// [`open`](MappedSnapshot::open) transparently decodes a v2 *full* file
/// into an owned v1-layout buffer behind the same handle — callers see an
/// identical [`CsrSanView`] either way. A standalone v2 *delta* file is
/// not self-contained and reports [`StoreError::DeltaWithoutBase`]; chain
/// resolution lives in
/// [`SnapshotVault::map_day`](crate::store::SnapshotVault::map_day).
#[derive(Debug)]
pub struct MappedSnapshot {
    backing: Backing,
    header: StoreHeader,
    path: PathBuf,
}

// SAFETY: the mapped backing is immutable for its whole lifetime
// (PROT_READ | MAP_PRIVATE, see the module contract): concurrent reads
// from any number of threads race with nothing. The raw pointer is only a
// region handle; no interior mutability exists. The owned backing is
// plain heap memory (`Vec<u64>`), Send + Sync by construction.
unsafe impl Send for MappedSnapshot {}
unsafe impl Sync for MappedSnapshot {}

impl MappedSnapshot {
    /// Maps `path` read-only and validates it as a `SANCSRBF` snapshot —
    /// the full [`CsrSanView::new`] matrix: header, per-column bounds,
    /// checksum, attribute tags, offset monotonicity, id ranges. Every
    /// failure (including all crafted-bytes corruption) is a typed
    /// [`StoreError`]; no code path panics on untrusted file content.
    ///
    /// A v2 *full* file is decoded once into an owned v1-layout buffer
    /// (same validation stack, same views); a standalone v2 *delta* file
    /// is rejected as [`StoreError::DeltaWithoutBase`].
    pub fn open(path: impl AsRef<Path>) -> Result<MappedSnapshot, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = fs::File::open(&path)?;
        let len = file.metadata()?.len();
        if len < VERSION_PREFIX_BYTES as u64 {
            // Too short to even name its format version.
            return Err(StoreError::Truncated { section: "header" });
        }
        // Peek magic + version to route v2 files to the decoding path
        // before committing to a mapping.
        let mut prefix = [0u8; VERSION_PREFIX_BYTES];
        file.read_exact(&mut prefix)?;
        if prefix[0..8] == MAGIC && u32::from_le_bytes(array_at(&prefix, 8)) == FORMAT_VERSION_V2 {
            drop(file);
            let raw = fs::read(&path)?;
            let image = decode_v2_image(&raw)?;
            // The image is structurally sealed but not yet semantically
            // validated — run the exact v1 matrix over it.
            let (_, header) = CsrSanView::new_with_header(&image)?;
            return Ok(MappedSnapshot {
                backing: Backing::Owned(image),
                header,
                path,
            });
        }
        if len < HEADER_BYTES as u64 {
            // Too short to even hold a header — and a zero-length mmap is
            // EINVAL, so reject before the syscall.
            return Err(StoreError::Truncated { section: "header" });
        }
        let len = usize::try_from(len).map_err(|_| StoreError::Truncated {
            section: "checksum",
        })?;
        // SAFETY: plain read-only private mapping of an open fd; the
        // result is checked against MAP_FAILED before use.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == usize::MAX as *mut c_void {
            return Err(StoreError::Io(std::io::Error::last_os_error()));
        }
        // Unmap on every early return below; defused once validation has
        // passed and the struct (whose Drop unmaps) takes over ownership.
        struct MapGuard {
            ptr: *mut c_void,
            len: usize,
        }
        impl Drop for MapGuard {
            fn drop(&mut self) {
                // SAFETY: exact addr/len of a successful mmap, unmapped
                // exactly once (the success path forgets the guard).
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
        let guard = MapGuard { ptr, len };
        // SAFETY: ptr/len describe the live mapping the guard owns; the
        // slice does not outlive this function.
        let bytes = unsafe { std::slice::from_raw_parts(ptr.cast_const().cast::<u8>(), len) };
        // One pass does everything: header parse + full corruption-matrix
        // validation; the parsed header is cached for O(1) `view()` calls.
        let (_, header) = CsrSanView::new_with_header(bytes)?;
        std::mem::forget(guard);
        Ok(MappedSnapshot {
            backing: Backing::Mapped {
                ptr: ptr.cast_const().cast::<u8>(),
                len,
            },
            header,
            path,
        })
    }

    /// Wraps an in-memory snapshot in the `MappedSnapshot` handle without
    /// touching the filesystem: the snapshot is serialised into a sealed
    /// v1-layout buffer, validated through the exact
    /// [`CsrSanView::new`] matrix, and served from owned memory. This is
    /// how [`SnapshotVault::map_day`](crate::store::SnapshotVault::map_day)
    /// serves a reconstructed delta-chain day behind the same `Send +
    /// Sync` handle the serving layer caches for plain v1 mappings;
    /// `path` records which day file the snapshot stands in for.
    pub fn from_owned(snap: &CsrSan, path: impl AsRef<Path>) -> Result<MappedSnapshot, StoreError> {
        let image = AlignedBytes::from_bytes(&snap.to_store_bytes());
        let (_, header) = CsrSanView::new_with_header(&image)?;
        Ok(MappedSnapshot {
            backing: Backing::Owned(image),
            header,
            path: path.as_ref().to_path_buf(),
        })
    }

    /// The raw snapshot bytes in v1 layout (header + columns + trailer) —
    /// the mapped file for v1 days, the owned decoded image for v2 days.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.backing.bytes()
    }

    /// A zero-copy snapshot view over the mapping. O(1): the bytes were
    /// validated once in [`open`](MappedSnapshot::open), so this only
    /// slices the already-parsed column grid.
    #[inline]
    pub fn view(&self) -> CsrSanView<'_> {
        CsrSanView::from_trusted(self.bytes(), &self.header)
    }

    /// Length of the backing bytes: the on-disk file size for a mapped v1
    /// snapshot, the decoded v1-layout image size for an owned (v2 or
    /// delta-reconstructed) snapshot.
    pub fn mapped_bytes(&self) -> usize {
        self.bytes().len()
    }

    /// The file this snapshot was mapped (or decoded) from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for MappedSnapshot {
    fn drop(&mut self) {
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len are the exact values a successful mmap
            // returned and every borrow of the mapping has ended (Drop
            // takes &mut). The owned backing frees itself.
            unsafe {
                munmap(ptr.cast_mut().cast::<c_void>(), len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::TimelineBuilder;
    use crate::ids::{AttrType, SocialId};
    use crate::read::SanRead;
    use crate::store::CHECKSUM_BYTES;
    use std::io::Write;

    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<MappedSnapshot>();

    fn sample_csr() -> crate::CsrSan {
        let mut tb = TimelineBuilder::new();
        let u0 = tb.add_social_node();
        let u1 = tb.add_social_node();
        let u2 = tb.add_social_node();
        let a0 = tb.add_attr_node(AttrType::Employer);
        tb.add_social_link(u0, u1);
        tb.add_social_link(u1, u0);
        tb.add_social_link(u2, u1);
        tb.add_attr_link(u1, a0);
        tb.finish().1.freeze()
    }

    fn temp_file(tag: &str, bytes: &[u8]) -> PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let path = std::env::temp_dir().join(format!(
            "san-mmap-{tag}-{}-{}.csr",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = fs::File::create(&path).expect("create temp snapshot");
        f.write_all(bytes).expect("write temp snapshot");
        path
    }

    #[test]
    fn open_view_matches_owned() {
        let csr = sample_csr();
        let path = temp_file("roundtrip", &csr.to_store_bytes());
        let mapped = MappedSnapshot::open(&path).expect("open mapped");
        assert_eq!(mapped.mapped_bytes() as u64, csr.store_bytes_len());
        assert_eq!(mapped.path(), path.as_path());
        let view = mapped.view();
        assert_eq!(view.num_social_nodes(), csr.num_social_nodes());
        assert_eq!(view.to_owned_csr(), csr);
        // Page alignment exceeds the 4-byte column requirement.
        assert_eq!(mapped.bytes().as_ptr() as usize % 4096, 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mapping_is_shared_across_threads() {
        let csr = sample_csr();
        let path = temp_file("threads", &csr.to_store_bytes());
        let mapped = std::sync::Arc::new(MappedSnapshot::open(&path).expect("open"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&mapped);
                std::thread::spawn(move || {
                    let view = m.view();
                    view.social_nodes()
                        .map(|u| view.out_degree(u))
                        .sum::<usize>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("no panic"), csr.num_social_links);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = MappedSnapshot::open("/nonexistent/san-mmap-test.csr")
            .expect_err("missing file must fail");
        assert!(matches!(err, StoreError::Io(_)), "{err}");
    }

    #[test]
    fn short_and_corrupt_files_are_typed_errors() {
        let csr = sample_csr();
        let bytes = csr.to_store_bytes();

        let empty = temp_file("empty", &[]);
        assert!(matches!(
            MappedSnapshot::open(&empty).expect_err("empty"),
            StoreError::Truncated { section: "header" }
        ));
        let _ = fs::remove_file(&empty);

        let cut = temp_file("cut", &bytes[..bytes.len() - CHECKSUM_BYTES - 1]);
        assert!(matches!(
            MappedSnapshot::open(&cut).expect_err("cut"),
            StoreError::Truncated { .. }
        ));
        let _ = fs::remove_file(&cut);

        let mut flipped = bytes.clone();
        // Flip a payload byte (past the header, before the trailer) so the
        // checksum — not a header check — is what must catch it.
        let mid = HEADER_BYTES + (flipped.len() - HEADER_BYTES - CHECKSUM_BYTES) / 2;
        flipped[mid] ^= 0x40;
        let bad = temp_file("flip", &flipped);
        let err = MappedSnapshot::open(&bad).expect_err("flip");
        assert!(
            matches!(
                err,
                StoreError::BadChecksum { .. } | StoreError::NonMonotoneOffsets { .. }
            ),
            "{err}"
        );
        let _ = fs::remove_file(&bad);
    }

    #[test]
    fn rename_over_mapped_file_keeps_old_view_alive() {
        // The vault's tmp+rename overwrite must never invalidate a live
        // mapping: the old inode survives until the mapping drops.
        let csr = sample_csr();
        let path = temp_file("rename", &csr.to_store_bytes());
        let mapped = MappedSnapshot::open(&path).expect("open v1");
        let replacement = crate::San::new().freeze();
        let tmp = temp_file("rename-new", &replacement.to_store_bytes());
        fs::rename(&tmp, &path).expect("rename over mapped file");
        // Old mapping still reads the old content in full.
        assert_eq!(mapped.view().to_owned_csr(), csr);
        assert_eq!(
            mapped.view().out_neighbors(SocialId(0)),
            SanRead::out_neighbors(&csr, SocialId(0))
        );
        // A fresh open sees the replacement.
        let fresh = MappedSnapshot::open(&path).expect("open v2");
        assert_eq!(fresh.view().num_social_nodes(), 0);
        let _ = fs::remove_file(&path);
    }
}
