//! SAN serialisation: a line-oriented text format and a serde DTO.
//!
//! The text format is the classic edge-list style used by graph datasets:
//!
//! ```text
//! # san v1
//! social_nodes 6
//! attr 0 city
//! attr 1 school
//! edge 3 2
//! attredge 0 1
//! ```
//!
//! `edge u v` is the directed social link `u → v`; `attredge u a` is the
//! undirected link between user `u` and attribute `a`. Lines starting with
//! `#` are comments. [`SanDto`] provides the same content as a
//! serde-(de)serialisable value for JSON persistence.

use crate::ids::{AttrId, AttrType, SocialId};
use crate::read::SanRead;
use crate::san::San;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from parsing the text format or validating a DTO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanIoError {
    /// The header line is missing or malformed.
    BadHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A link referenced an undeclared node.
    DanglingReference {
        /// 1-based line number (0 for DTO input).
        line: usize,
    },
}

impl fmt::Display for SanIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanIoError::BadHeader => write!(f, "missing or malformed '# san v1' header"),
            SanIoError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            SanIoError::DanglingReference { line } => {
                write!(f, "line {line}: link references undeclared node")
            }
        }
    }
}

impl std::error::Error for SanIoError {}

/// Serialises any SAN read view to the text format.
pub fn to_text(san: &impl SanRead) -> String {
    let mut s = String::new();
    s.push_str("# san v1\n");
    s.push_str(&format!("social_nodes {}\n", san.num_social_nodes()));
    for a in san.attr_nodes() {
        s.push_str(&format!("attr {} {}\n", a.0, san.attr_type(a).as_str()));
    }
    for (u, v) in san.social_links() {
        s.push_str(&format!("edge {} {}\n", u.0, v.0));
    }
    for (u, a) in san.attr_links() {
        s.push_str(&format!("attredge {} {}\n", u.0, a.0));
    }
    s
}

/// Parses the text format produced by [`to_text`].
pub fn from_text(text: &str) -> Result<San, SanIoError> {
    let mut lines = text.lines().enumerate();
    let header = lines.next().map(|(_, l)| l.trim());
    if header != Some("# san v1") {
        return Err(SanIoError::BadHeader);
    }
    let mut san = San::new();
    let mut declared_social = 0u32;
    let mut declared_attrs: Vec<AttrType> = Vec::new();
    let mut pending_social: Vec<(usize, u32, u32)> = Vec::new();
    let mut pending_attr: Vec<(usize, u32, u32)> = Vec::new();

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        // split_whitespace on a trimmed nonempty line always yields a
        // first token; an empty fallback falls into the unknown-kind arm.
        let kind = parts.next().unwrap_or("");
        let bad = |reason: &str| SanIoError::BadLine {
            line: line_no,
            reason: reason.to_string(),
        };
        match kind {
            "social_nodes" => {
                let n: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("expected 'social_nodes <count>'"))?;
                declared_social += n;
            }
            "attr" => {
                let id: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("expected 'attr <id> <type>'"))?;
                let ty = parts
                    .next()
                    .and_then(AttrType::from_str_name)
                    .ok_or_else(|| bad("unknown attribute type"))?;
                if id as usize != declared_attrs.len() {
                    return Err(bad("attribute ids must be dense and in order"));
                }
                declared_attrs.push(ty);
            }
            "edge" => {
                let u: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("expected 'edge <src> <dst>'"))?;
                let v: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("expected 'edge <src> <dst>'"))?;
                pending_social.push((line_no, u, v));
            }
            "attredge" => {
                let u: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("expected 'attredge <user> <attr>'"))?;
                let a: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("expected 'attredge <user> <attr>'"))?;
                pending_attr.push((line_no, u, a));
            }
            _ => return Err(bad("unknown record type")),
        }
    }

    for _ in 0..declared_social {
        san.add_social_node();
    }
    for &ty in &declared_attrs {
        san.add_attr_node(ty);
    }
    for (line, u, v) in pending_social {
        if u >= declared_social || v >= declared_social || u == v {
            return Err(SanIoError::DanglingReference { line });
        }
        san.add_social_link(SocialId(u), SocialId(v));
    }
    for (line, u, a) in pending_attr {
        if u >= declared_social || a as usize >= declared_attrs.len() {
            return Err(SanIoError::DanglingReference { line });
        }
        san.add_attr_link(SocialId(u), AttrId(a));
    }
    Ok(san)
}

/// Serde-friendly value representation of a SAN.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct SanDto {
    /// Number of social nodes.
    pub social_nodes: u32,
    /// Attribute node types, by dense id.
    pub attr_types: Vec<AttrType>,
    /// Directed social links.
    pub social_links: Vec<(u32, u32)>,
    /// User–attribute links.
    pub attr_links: Vec<(u32, u32)>,
}

impl From<&San> for SanDto {
    fn from(san: &San) -> Self {
        SanDto {
            social_nodes: san.num_social_nodes() as u32,
            attr_types: san.attr_nodes().map(|a| san.attr_type(a)).collect(),
            social_links: san.social_links().map(|(u, v)| (u.0, v.0)).collect(),
            attr_links: san.attr_links().map(|(u, a)| (u.0, a.0)).collect(),
        }
    }
}

impl TryFrom<&SanDto> for San {
    type Error = SanIoError;

    fn try_from(dto: &SanDto) -> Result<San, SanIoError> {
        let mut san = San::with_capacity(dto.social_nodes as usize, dto.attr_types.len());
        for _ in 0..dto.social_nodes {
            san.add_social_node();
        }
        for &ty in &dto.attr_types {
            san.add_attr_node(ty);
        }
        for &(u, v) in &dto.social_links {
            if u >= dto.social_nodes || v >= dto.social_nodes || u == v {
                return Err(SanIoError::DanglingReference { line: 0 });
            }
            san.add_social_link(SocialId(u), SocialId(v));
        }
        for &(u, a) in &dto.attr_links {
            if u >= dto.social_nodes || a as usize >= dto.attr_types.len() {
                return Err(SanIoError::DanglingReference { line: 0 });
            }
            san.add_attr_link(SocialId(u), AttrId(a));
        }
        Ok(san)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1;

    fn equivalent(a: &San, b: &San) -> bool {
        use std::collections::BTreeSet;
        a.num_social_nodes() == b.num_social_nodes()
            && a.num_attr_nodes() == b.num_attr_nodes()
            && a.social_links().collect::<BTreeSet<_>>()
                == b.social_links().collect::<BTreeSet<_>>()
            && a.attr_links().collect::<BTreeSet<_>>() == b.attr_links().collect::<BTreeSet<_>>()
            && a.attr_nodes().all(|x| a.attr_type(x) == b.attr_type(x))
    }

    #[test]
    fn text_roundtrip_figure1() {
        let fx = figure1();
        let text = to_text(&fx.san);
        let back = from_text(&text).unwrap();
        assert!(equivalent(&fx.san, &back));
        back.check_consistency().unwrap();
    }

    #[test]
    fn text_roundtrip_empty() {
        let san = San::new();
        let back = from_text(&to_text(&san)).unwrap();
        assert_eq!(back.num_social_nodes(), 0);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# san v1\nsocial_nodes 2\n\n# a comment\nedge 0 1\n";
        let san = from_text(text).unwrap();
        assert_eq!(san.num_social_links(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            from_text("social_nodes 2\n").unwrap_err(),
            SanIoError::BadHeader
        );
        assert_eq!(from_text("").unwrap_err(), SanIoError::BadHeader);
    }

    #[test]
    fn malformed_lines_rejected() {
        let e = from_text("# san v1\nedge 0\n").unwrap_err();
        assert!(matches!(e, SanIoError::BadLine { line: 2, .. }));
        let e = from_text("# san v1\nfrobnicate 1 2\n").unwrap_err();
        assert!(matches!(e, SanIoError::BadLine { .. }));
        let e = from_text("# san v1\nattr 0 sorcery\n").unwrap_err();
        assert!(matches!(e, SanIoError::BadLine { .. }));
    }

    #[test]
    fn dangling_links_rejected() {
        let e = from_text("# san v1\nsocial_nodes 2\nedge 0 5\n").unwrap_err();
        assert!(matches!(e, SanIoError::DanglingReference { .. }));
        let e = from_text("# san v1\nsocial_nodes 2\nattredge 0 0\n").unwrap_err();
        assert!(matches!(e, SanIoError::DanglingReference { .. }));
    }

    #[test]
    fn non_dense_attr_ids_rejected() {
        let e = from_text("# san v1\nattr 1 city\n").unwrap_err();
        assert!(matches!(e, SanIoError::BadLine { .. }));
    }

    #[test]
    fn edges_may_precede_node_declarations() {
        let text = "# san v1\nedge 0 1\nsocial_nodes 2\n";
        let san = from_text(text).unwrap();
        assert_eq!(san.num_social_links(), 1);
    }

    #[test]
    fn dto_json_roundtrip() {
        let fx = figure1();
        let dto = SanDto::from(&fx.san);
        let json = serde_json::to_string(&dto).unwrap();
        let dto2: SanDto = serde_json::from_str(&json).unwrap();
        assert_eq!(dto, dto2);
        let back = San::try_from(&dto2).unwrap();
        assert!(equivalent(&fx.san, &back));
    }

    #[test]
    fn dto_validation() {
        let dto = SanDto {
            social_nodes: 2,
            attr_types: vec![],
            social_links: vec![(0, 9)],
            attr_links: vec![],
        };
        assert!(San::try_from(&dto).is_err());
        let dto = SanDto {
            social_nodes: 2,
            attr_types: vec![],
            social_links: vec![],
            attr_links: vec![(0, 0)],
        };
        assert!(San::try_from(&dto).is_err());
    }

    #[test]
    fn error_display() {
        assert!(SanIoError::BadHeader.to_string().contains("header"));
        let e = SanIoError::BadLine {
            line: 3,
            reason: "oops".into(),
        };
        assert_eq!(e.to_string(), "line 3: oops");
        assert!(SanIoError::DanglingReference { line: 2 }
            .to_string()
            .contains("undeclared"));
    }
}
