//! Property lockdown for the v2 column codec: **encode → decode** is the
//! identity over arbitrary `u32` sequences — including all-zero runs,
//! `u32::MAX` extremes, monotone offset-style rows, and adversarial
//! sawtooth deltas that maximise zigzag magnitude — the encoded size never
//! exceeds the declared [`max_encoded_len`] bound, and every structural
//! mutation of a valid stream decodes to a typed error, never a panic or
//! a silently wrong value count.

use proptest::prelude::*;
use san_graph::codec::{decode_u32s, encode_u32s, max_encoded_len, BLOCK};
use san_graph::store::StoreError;

fn roundtrip(values: &[u32]) -> Result<Vec<u32>, StoreError> {
    let mut bytes = Vec::new();
    encode_u32s(values, &mut bytes);
    let bound = max_encoded_len(values.len() as u64).expect("in-range count");
    assert!(
        (bytes.len() as u64) <= bound,
        "{} encoded bytes exceed bound {bound} for {} values",
        bytes.len(),
        values.len()
    );
    decode_u32s(&bytes, values.len(), "test")
}

/// Value sequences that stress every codec regime: uniform randoms,
/// frame-of-reference-friendly monotone rows, constant runs (zero deltas),
/// extreme endpoints, and alternating min/max sawtooths (worst-case zigzag
/// width). Lengths straddle the block boundary.
fn arb_values() -> impl Strategy<Value = Vec<u32>> {
    let len = prop_oneof![
        Just(0usize),
        1usize..8,
        (BLOCK - 2)..(BLOCK + 3),
        (2 * BLOCK - 1)..(2 * BLOCK + 2),
    ];
    len.prop_flat_map(|n| {
        prop_oneof![
            // Arbitrary values (includes 0 and u32::MAX by chance).
            prop::collection::vec(any::<u32>(), n..=n),
            // Monotone offsets with arbitrary gaps — the CSR row shape.
            prop::collection::vec(0u32..1024, n..=n).prop_map(|gaps| {
                let mut acc = 0u32;
                gaps.into_iter()
                    .map(|g| {
                        acc = acc.saturating_add(g);
                        acc
                    })
                    .collect()
            }),
            // Constant runs: every delta is zero.
            (any::<u32>()).prop_map(move |v| vec![v; n]),
            // Adversarial sawtooth: max-magnitude alternating deltas.
            Just(
                (0..n)
                    .map(|i| if i % 2 == 0 { 0 } else { u32::MAX })
                    .collect::<Vec<u32>>()
            ),
            // Endpoint-heavy: only 0 and u32::MAX, arbitrary order.
            prop::collection::vec(any::<bool>(), n..=n).prop_map(|bits| bits
                .into_iter()
                .map(|b| if b { u32::MAX } else { 0 })
                .collect()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity and the size bound holds.
    #[test]
    fn roundtrip_is_identity(values in arb_values()) {
        let back = roundtrip(&values).expect("valid stream decodes");
        prop_assert_eq!(back, values);
    }

    /// A decode asked for the wrong count fails typed: shorter counts see
    /// trailing bytes, longer counts run out of stream — never a panic,
    /// never a silently resized vector.
    #[test]
    fn wrong_count_is_rejected(values in arb_values(), delta in 1usize..4) {
        prop_assume!(!values.is_empty());
        let mut bytes = Vec::new();
        encode_u32s(&values, &mut bytes);
        let short = decode_u32s(&bytes, values.len() - delta.min(values.len()), "test");
        if values.len() > delta {
            prop_assert!(
                matches!(short, Err(StoreError::BadCodec { .. })),
                "short count must fail typed, got {short:?}"
            );
        }
        let long = decode_u32s(&bytes, values.len() + delta, "test");
        prop_assert!(
            matches!(long, Err(StoreError::BadCodec { .. })),
            "long count must fail typed, got {long:?}"
        );
    }

    /// Truncating a valid stream anywhere decodes to a typed error.
    #[test]
    fn truncation_is_rejected(values in arb_values(), cut in any::<prop::sample::Index>()) {
        prop_assume!(!values.is_empty());
        let mut bytes = Vec::new();
        encode_u32s(&values, &mut bytes);
        let cut = cut.index(bytes.len());
        let out = decode_u32s(&bytes[..cut], values.len(), "test");
        prop_assert!(
            matches!(out, Err(StoreError::BadCodec { .. })),
            "truncation at {cut}/{} must fail typed, got {out:?}",
            bytes.len()
        );
    }

    /// Flipping a continuation bit (or any byte) never panics: the decode
    /// either fails typed or yields exactly `count` values.
    #[test]
    fn corruption_never_panics(values in arb_values(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        prop_assume!(!values.is_empty());
        let mut bytes = Vec::new();
        encode_u32s(&values, &mut bytes);
        let pos = pos.index(bytes.len());
        bytes[pos] ^= 1 << bit;
        match decode_u32s(&bytes, values.len(), "test") {
            Ok(decoded) => prop_assert_eq!(decoded.len(), values.len()),
            Err(StoreError::BadCodec { array, .. }) => prop_assert_eq!(array, "test"),
            Err(other) => prop_assert!(false, "unexpected error family: {other:?}"),
        }
    }
}

/// Deterministic extremes that must always hold, independent of the
/// proptest sampling.
#[test]
fn fixed_extremes_roundtrip() {
    let cases: &[Vec<u32>] = &[
        vec![],
        vec![0],
        vec![u32::MAX],
        vec![0; 3 * BLOCK],
        vec![u32::MAX; BLOCK + 1],
        (0..2 * BLOCK as u32).collect(),
        (0..2 * BLOCK as u32).rev().collect(),
    ];
    for values in cases {
        let back = roundtrip(values).expect("extreme case decodes");
        assert_eq!(&back, values);
    }
}
