//! The equivalence proof for the snapshot pipeline: for arbitrary
//! timelines, the incremental delta-freeze ([`DeltaFreezer`] via
//! `snapshot_stream` / `for_each_snapshot`) produces, at every sampled
//! day, a [`CsrSan`] **field-for-field identical** (rows, offsets,
//! undirected unions, membership tables, attribute types, link counters —
//! `CsrSan`'s derived `PartialEq` covers all of them) to the
//! replay-from-day-0 `snapshot_csr(day)` it replaces.

use proptest::prelude::*;
use san_graph::prelude::*;

/// Strategy: an arbitrary day-ordered timeline built through the same
/// mutation API the generators use. Ops mix node/link arrivals for both
/// layers with day advances (including multi-day gaps), so timelines with
/// empty days, link-free days and node-free days all occur.
fn arb_timeline(max_ops: usize) -> impl Strategy<Value = SanTimeline> {
    prop::collection::vec((0u8..6, any::<u32>(), any::<u32>()), 1..max_ops).prop_map(|ops| {
        let mut tb = TimelineBuilder::new();
        for (op, x, y) in ops {
            match op {
                0 => {
                    tb.add_social_node();
                }
                1 => {
                    let ty = match x % 4 {
                        0 => AttrType::School,
                        1 => AttrType::Major,
                        2 => AttrType::Employer,
                        _ => AttrType::City,
                    };
                    tb.add_attr_node(ty);
                }
                2 | 3 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    if ns >= 2 {
                        // Duplicate and self-loop attempts are deliberately
                        // generated; the builder rejects them.
                        tb.add_social_link(SocialId(x % ns), SocialId(y % ns));
                    }
                }
                4 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    let na = tb.san().num_attr_nodes() as u32;
                    if ns >= 1 && na >= 1 {
                        tb.add_attr_link(SocialId(x % ns), AttrId(y % na));
                    }
                }
                _ => {
                    // Advance 1–3 days: creates event-free gap days.
                    tb.advance_to_day(tb.day() + 1 + (x % 3));
                }
            }
        }
        tb.finish().0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `snapshot_stream(step)` equals replay-per-day at every sampled day,
    /// for every step, and samples exactly the right days.
    #[test]
    fn stream_equals_replay_at_every_sampled_day(
        tl in arb_timeline(120),
        step_raw in 1u32..9,
    ) {
        if let Some(max_day) = tl.max_day() {
            let mut sampled = Vec::new();
            for (day, snap) in tl.snapshot_stream(step_raw) {
                prop_assert_eq!(&*snap, &tl.snapshot_csr(day), "step={} day={}", step_raw, day);
                sampled.push(day);
            }
            let expect: Vec<u32> = (0..=max_day)
                .filter(|d| d % step_raw == 0 || *d == max_day)
                .collect();
            prop_assert_eq!(sampled, expect);
        } else {
            // All ops were rejected (e.g. links before two nodes exist):
            // the empty timeline must stream nothing.
            prop_assert_eq!(tl.snapshot_stream(step_raw).count(), 0);
        }
    }

    /// The borrowing sweep visits the same days with the same snapshots.
    #[test]
    fn for_each_snapshot_equals_replay(tl in arb_timeline(100), step_raw in 1u32..5) {
        let mut ok = true;
        let mut visited = 0u32;
        tl.for_each_snapshot(step_raw, |day, snap| {
            ok &= snap == &tl.snapshot_csr(day);
            visited += 1;
        });
        prop_assert!(ok, "a sampled snapshot diverged from replay");
        prop_assert!(visited >= 1);
    }

    /// Driving a raw `DeltaFreezer` day by day stays identical to replay on
    /// *every* day, not just sampled ones, and its end state matches the
    /// builder's own final network.
    #[test]
    fn freezer_tracks_replay_day_by_day(tl in arb_timeline(80)) {
        if let Some(max_day) = tl.max_day() {
            let events = tl.events();
            let mut freezer = DeltaFreezer::new();
            let mut idx = 0;
            for day in 0..=max_day {
                let start = idx;
                while idx < events.len() && events[idx].day() == day {
                    idx += 1;
                }
                freezer.apply_day(&events[start..idx]);
                prop_assert_eq!(freezer.current(), &tl.snapshot_csr(day), "day {}", day);
            }
            prop_assert_eq!(freezer.current(), &tl.final_snapshot().freeze());
        }
    }

    /// Resuming a freezer from a mid-timeline `snapshot_csr` converges to
    /// the same final state as streaming from day 0 (the
    /// warm-start-from-persisted-snapshot use case).
    #[test]
    fn freezer_resume_from_mid_snapshot(tl in arb_timeline(80), split_raw in any::<u32>()) {
        if let Some(max_day) = tl.max_day() {
            let split = split_raw % (max_day + 1);
            let mut freezer = DeltaFreezer::from_snapshot(tl.snapshot_csr(split));
            let events = tl.events();
            let mut idx = events.iter().take_while(|e| e.day() <= split).count();
            for day in (split + 1)..=max_day {
                let start = idx;
                while idx < events.len() && events[idx].day() == day {
                    idx += 1;
                }
                freezer.apply_day(&events[start..idx]);
            }
            prop_assert_eq!(freezer.current(), &tl.snapshot_csr(max_day));
        }
    }
}

/// Logs a `TimelineBuilder` never records — duplicate links within and
/// across days, self-loops — still replay identically through the freezer,
/// because it mirrors `San`'s rejection rules event by event.
#[test]
fn hand_built_log_with_rejected_events_matches_replay() {
    let events = vec![
        SanEvent::SocialNode { day: 0 },
        SanEvent::SocialNode { day: 0 },
        SanEvent::SocialNode { day: 0 },
        SanEvent::AttrNode {
            day: 0,
            ty: AttrType::Employer,
        },
        SanEvent::SocialLink {
            day: 0,
            src: SocialId(0),
            dst: SocialId(1),
        },
        // Same-day duplicate and self-loop: both rejected by replay.
        SanEvent::SocialLink {
            day: 0,
            src: SocialId(0),
            dst: SocialId(1),
        },
        SanEvent::SocialLink {
            day: 0,
            src: SocialId(2),
            dst: SocialId(2),
        },
        SanEvent::AttrLink {
            day: 1,
            user: SocialId(1),
            attr: AttrId(0),
        },
        // Cross-day duplicates of both link kinds.
        SanEvent::SocialLink {
            day: 2,
            src: SocialId(0),
            dst: SocialId(1),
        },
        SanEvent::AttrLink {
            day: 2,
            user: SocialId(1),
            attr: AttrId(0),
        },
        // Reciprocal link: und rows must not double-count.
        SanEvent::SocialLink {
            day: 2,
            src: SocialId(1),
            dst: SocialId(0),
        },
    ];
    let tl = SanTimeline::from_events(events);
    for (day, snap) in tl.snapshot_stream(1) {
        assert_eq!(*snap, tl.snapshot_csr(day), "day {day}");
    }
}

/// The stream clones exactly one snapshot per sampled day — the freeze
/// budget that makes count-only sweeps off this path worthwhile.
#[test]
fn stream_freeze_budget() {
    let mut tb = TimelineBuilder::new();
    let mut prev = tb.add_social_node();
    for day in 1..=30u32 {
        tb.advance_to_day(day);
        let u = tb.add_social_node();
        tb.add_social_link(u, prev);
        prev = u;
    }
    let (tl, _) = tb.finish();
    let mut stream = tl.snapshot_stream(7);
    let mut yielded = 0u64;
    while stream.next().is_some() {
        yielded += 1;
    }
    // Days 0, 7, 14, 21, 28 plus the forced final day 30.
    assert_eq!(yielded, 6);
    assert_eq!(stream.snapshots_taken(), yielded);
    assert_eq!(stream.days_applied(), 31);
}
