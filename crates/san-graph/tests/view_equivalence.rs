//! Zero-copy view lockdown: for arbitrary timelines, a [`CsrSanView`]
//! over `to_store_bytes()` output is **query-for-query identical** to the
//! owned [`CsrSan`] it was serialised from — every [`SanRead`] method,
//! required and defaulted — and a [`MappedSnapshot`] of the same bytes
//! serves the same answers. Includes the 10k-node/98-day fixture, where
//! every column crosses many staging-buffer boundaries.

#[cfg(unix)]
use san_graph::mmap::MappedSnapshot;
use san_graph::prelude::*;
use san_graph::view::{AlignedBytes, CsrSanView};
use std::collections::BTreeSet;
#[cfg(unix)]
use std::path::PathBuf;

use proptest::prelude::*;

/// Same arbitrary-timeline strategy family as `store_roundtrip`: mixed
/// node/link arrivals on both layers with multi-day gaps.
fn arb_timeline(max_ops: usize) -> impl Strategy<Value = SanTimeline> {
    prop::collection::vec((0u8..6, any::<u32>(), any::<u32>()), 1..max_ops).prop_map(|ops| {
        let mut tb = TimelineBuilder::new();
        for (op, x, y) in ops {
            match op {
                0 => {
                    tb.add_social_node();
                }
                1 => {
                    let ty = match x % 5 {
                        0 => AttrType::School,
                        1 => AttrType::Major,
                        2 => AttrType::Employer,
                        3 => AttrType::City,
                        _ => AttrType::Other,
                    };
                    tb.add_attr_node(ty);
                }
                2 | 3 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    if ns >= 2 {
                        tb.add_social_link(SocialId(x % ns), SocialId(y % ns));
                    }
                }
                4 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    let na = tb.san().num_attr_nodes() as u32;
                    if ns >= 1 && na >= 1 {
                        tb.add_attr_link(SocialId(x % ns), AttrId(y % na));
                    }
                }
                _ => {
                    tb.advance_to_day(tb.day() + 1 + (x % 3));
                }
            }
        }
        tb.finish().0
    })
}

/// Every `SanRead` method — required accessors, degrees, membership,
/// combined neighbourhoods, iteration — agrees between the view and the
/// owned snapshot. Pairwise queries are exhaustive (these graphs are
/// small).
fn assert_view_agrees(view: &CsrSanView<'_>, csr: &CsrSan) {
    assert_eq!(view.num_social_nodes(), csr.num_social_nodes());
    assert_eq!(view.num_attr_nodes(), csr.num_attr_nodes());
    assert_eq!(
        SanRead::num_social_links(view),
        SanRead::num_social_links(csr)
    );
    assert_eq!(SanRead::num_attr_links(view), SanRead::num_attr_links(csr));
    let social: Vec<SocialId> = view.social_nodes().collect();
    assert_eq!(social, csr.social_nodes().collect::<Vec<_>>());
    let attrs: Vec<AttrId> = view.attr_nodes().collect();
    assert_eq!(attrs, csr.attr_nodes().collect::<Vec<_>>());
    for &u in &social {
        assert_eq!(view.out_neighbors(u), csr.out_neighbors(u), "{u} out");
        assert_eq!(view.in_neighbors(u), csr.in_neighbors(u), "{u} in");
        assert_eq!(view.attrs_of(u), csr.attrs_of(u), "{u} attrs");
        assert_eq!(
            view.social_neighbors(u).as_ref(),
            csr.social_neighbors(u).as_ref(),
            "{u} Γs"
        );
        assert_eq!(view.undirected_neighbors(u), csr.undirected_neighbors(u));
        assert_eq!(view.out_degree(u), csr.out_degree(u));
        assert_eq!(view.in_degree(u), csr.in_degree(u));
        assert_eq!(view.attr_degree(u), csr.attr_degree(u));
        assert_eq!(view.undirected_degree(u), csr.undirected_degree(u));
    }
    for &a in &attrs {
        assert_eq!(view.members_of(a), csr.members_of(a), "{a} members");
        assert_eq!(view.attr_type(a), csr.attr_type(a), "{a} type");
        assert_eq!(view.social_degree_of_attr(a), csr.social_degree_of_attr(a));
    }
    for &u in &social {
        for &v in &social {
            assert_eq!(
                view.has_social_link(u, v),
                csr.has_social_link(u, v),
                "{u}->{v}"
            );
            assert_eq!(
                view.common_attrs(u, v),
                csr.common_attrs(u, v),
                "common_attrs {u},{v}"
            );
            assert_eq!(
                view.common_social_neighbors(u, v),
                csr.common_social_neighbors(u, v),
                "common_social {u},{v}"
            );
        }
        for &a in &attrs {
            assert_eq!(view.has_attr_link(u, a), csr.has_attr_link(u, a));
        }
    }
    assert_eq!(
        view.social_links().collect::<BTreeSet<_>>(),
        csr.social_links().collect::<BTreeSet<_>>()
    );
    assert_eq!(
        view.attr_links().collect::<BTreeSet<_>>(),
        csr.attr_links().collect::<BTreeSet<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Query-for-query identity at every sampled day of arbitrary
    /// timelines, plus O(1)-overhead and exact materialisation audits.
    #[test]
    fn view_is_query_identical_at_every_sampled_day(tl in arb_timeline(80), step in 1u32..4) {
        for (day, snap) in tl.snapshot_stream(step) {
            let bytes = AlignedBytes::from_bytes(&snap.to_store_bytes());
            let view = CsrSanView::new(&bytes).expect("valid snapshot bytes");
            assert_view_agrees(&view, &snap);
            // Zero column allocations: the view owns no heap at all.
            prop_assert_eq!(view.heap_bytes(), 0, "day {}", day);
            // Materialising recovers the exact owned form (and exact
            // heap accounting, like read_from).
            let owned = view.to_owned_csr();
            prop_assert_eq!(&owned, &*snap, "day {}", day);
            prop_assert_eq!(owned.heap_bytes(), snap.heap_bytes(), "day {}", day);
        }
    }
}

#[cfg(unix)]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The mapped path serves the same answers as the in-memory view.
    /// Ignored under Miri: the interpreter cannot call the foreign
    /// `mmap(2)`; the in-memory view proptests above cover the shared
    /// validation and query code.
    #[cfg_attr(miri, ignore)]
    #[test]
    fn mapped_snapshot_is_query_identical(tl in arb_timeline(60)) {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let Some(day) = tl.max_day() else { return };
        let snap = tl.snapshot_csr(day);
        let path: PathBuf = std::env::temp_dir().join(format!(
            "san-view-eq-{}-{}.csr",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, snap.to_store_bytes()).expect("write snapshot");
        let mapped = MappedSnapshot::open(&path).expect("map snapshot");
        assert_view_agrees(&mapped.view(), &snap);
        drop(mapped);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn empty_and_attr_only_graphs_view_identically() {
    let empty = San::new().freeze();
    let bytes = AlignedBytes::from_bytes(&empty.to_store_bytes());
    assert_view_agrees(&CsrSanView::new(&bytes).expect("empty"), &empty);

    let mut san = San::new();
    let u = san.add_social_node();
    for ty in [
        AttrType::School,
        AttrType::Major,
        AttrType::Employer,
        AttrType::City,
        AttrType::Other,
    ] {
        let a = san.add_attr_node(ty);
        san.add_attr_link(u, a);
    }
    let snap = san.freeze();
    let bytes = AlignedBytes::from_bytes(&snap.to_store_bytes());
    assert_view_agrees(&CsrSanView::new(&bytes).expect("attr-only"), &snap);
}

/// The 10k-node/98-day fixture: columns cross the staging buffer many
/// times; per-node comparisons cover every row, pairwise queries sample.
/// Ignored under Miri — same code paths as the proptests above, at a
/// volume the interpreter would take hours over.
#[cfg_attr(miri, ignore)]
#[test]
fn ten_k_fixture_views_identically() {
    use san_stats::SplitRng;
    let mut rng = SplitRng::new(42);
    let mut tb = TimelineBuilder::new();
    let mut users: Vec<SocialId> = vec![tb.add_social_node()];
    let attrs: Vec<AttrId> = (0..64)
        .map(|i| tb.add_attr_node(AttrType::PAPER_TYPES[i % 4]))
        .collect();
    for day in 1..=98u32 {
        tb.advance_to_day(day);
        for _ in 0..102 {
            let u = tb.add_social_node();
            for _ in 0..3 {
                let v = users[rng.below(users.len() as u64) as usize];
                tb.add_social_link(u, v);
                if rng.chance(0.3) {
                    tb.add_social_link(v, u);
                }
            }
            if rng.chance(0.4) {
                tb.add_attr_link(u, attrs[rng.below(64) as usize]);
            }
            users.push(u);
        }
    }
    let (_, san) = tb.finish();
    let snap = san.freeze();
    assert!(snap.num_social_nodes() >= 9_000, "fixture big enough");
    let bytes = AlignedBytes::from_bytes(&snap.to_store_bytes());
    let view = CsrSanView::new(&bytes).expect("10k snapshot views");
    assert_eq!(view.num_social_nodes(), snap.num_social_nodes());
    assert_eq!(
        SanRead::num_social_links(&view),
        SanRead::num_social_links(&snap)
    );
    for u in view.social_nodes() {
        assert_eq!(view.out_neighbors(u), snap.out_neighbors(u));
        assert_eq!(view.in_neighbors(u), snap.in_neighbors(u));
        assert_eq!(view.attrs_of(u), snap.attrs_of(u));
        assert_eq!(view.undirected_neighbors(u), snap.undirected_neighbors(u));
    }
    for a in view.attr_nodes() {
        assert_eq!(view.members_of(a), snap.members_of(a));
        assert_eq!(view.attr_type(a), snap.attr_type(a));
    }
    let n = snap.num_social_nodes() as u64;
    let mut rng = SplitRng::new(7);
    for _ in 0..20_000 {
        let u = SocialId(rng.below(n) as u32);
        let v = SocialId(rng.below(n) as u32);
        assert_eq!(view.has_social_link(u, v), snap.has_social_link(u, v));
        assert_eq!(
            view.common_social_neighbors(u, v),
            snap.common_social_neighbors(u, v)
        );
        assert_eq!(view.common_attrs(u, v), snap.common_attrs(u, v));
    }
    assert_eq!(view.heap_bytes(), 0);
    assert_eq!(view.to_owned_csr(), snap);
}
