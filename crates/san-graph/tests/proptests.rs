//! Property-based tests for the SAN data structure.

use proptest::prelude::*;
use san_graph::degree::{bound_degrees, degree_vectors, to_undirected};
use san_graph::io::{from_text, to_text, SanDto};
use san_graph::prelude::*;
use san_graph::subsample::subsample_attributes;
use san_graph::traverse::{bfs_directed, induced_subgraph, weakly_connected_components};
use san_stats::SplitRng;

/// Strategy: a random SAN with up to `n` social nodes, `m` attribute nodes
/// and random links.
fn arb_san(max_social: u32, max_attr: u32) -> impl Strategy<Value = San> {
    (
        1..=max_social,
        0..=max_attr,
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..200),
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..100),
    )
        .prop_map(|(ns, na, social, attr)| {
            let mut san = San::new();
            for _ in 0..ns {
                san.add_social_node();
            }
            for i in 0..na {
                let ty = match i % 4 {
                    0 => AttrType::School,
                    1 => AttrType::Major,
                    2 => AttrType::Employer,
                    _ => AttrType::City,
                };
                san.add_attr_node(ty);
            }
            for (u, v) in social {
                let (u, v) = (u % ns, v % ns);
                if u != v {
                    san.add_social_link(SocialId(u), SocialId(v));
                }
            }
            if na > 0 {
                for (u, a) in attr {
                    san.add_attr_link(SocialId(u % ns), AttrId(a % na));
                }
            }
            san
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every randomly grown SAN satisfies the internal consistency
    /// invariants (mirrored adjacency, accurate counters, no dups).
    #[test]
    fn random_san_consistent(san in arb_san(40, 8)) {
        prop_assert!(san.check_consistency().is_ok());
    }

    /// Sum of out-degrees = sum of in-degrees = |Es|; attribute link sums
    /// match on both sides of the bipartite graph.
    #[test]
    fn degree_sums_match_link_counts(san in arb_san(40, 8)) {
        let dv = degree_vectors(&san);
        let links = san.num_social_links() as u64;
        prop_assert_eq!(dv.out.iter().sum::<u64>(), links);
        prop_assert_eq!(dv.inc.iter().sum::<u64>(), links);
        let alinks = san.num_attr_links() as u64;
        prop_assert_eq!(dv.attr_of_social.iter().sum::<u64>(), alinks);
        prop_assert_eq!(dv.social_of_attr.iter().sum::<u64>(), alinks);
    }

    /// WCC assignment is a partition consistent with the link structure.
    #[test]
    fn wcc_is_consistent_partition(san in arb_san(40, 4)) {
        let (ids, sizes) = weakly_connected_components(&san);
        prop_assert_eq!(ids.len(), san.num_social_nodes());
        prop_assert_eq!(sizes.iter().sum::<usize>(), san.num_social_nodes());
        for (u, v) in san.social_links() {
            prop_assert_eq!(ids[u.index()], ids[v.index()]);
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// d(v) <= d(u) + 1 for every edge u->v with u reachable.
    #[test]
    fn bfs_distance_triangle(san in arb_san(30, 0)) {
        let d = bfs_directed(&san, SocialId(0));
        for (u, v) in san.social_links() {
            if let Some(du) = d[u.index()] {
                let dv = d[v.index()].expect("successor of reachable node is reachable");
                prop_assert!(dv <= du + 1);
            }
        }
    }

    /// Text serialisation round-trips exactly (as link sets).
    #[test]
    fn text_roundtrip(san in arb_san(25, 6)) {
        use std::collections::BTreeSet;
        let text = to_text(&san);
        let back = from_text(&text).unwrap();
        prop_assert_eq!(back.num_social_nodes(), san.num_social_nodes());
        prop_assert_eq!(back.num_attr_nodes(), san.num_attr_nodes());
        prop_assert_eq!(
            back.social_links().collect::<BTreeSet<_>>(),
            san.social_links().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(
            back.attr_links().collect::<BTreeSet<_>>(),
            san.attr_links().collect::<BTreeSet<_>>()
        );
    }

    /// DTO JSON round-trips exactly.
    #[test]
    fn dto_roundtrip(san in arb_san(20, 5)) {
        let dto = SanDto::from(&san);
        let json = serde_json::to_string(&dto).unwrap();
        let dto2: SanDto = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&dto, &dto2);
        let back = San::try_from(&dto2).unwrap();
        prop_assert!(back.check_consistency().is_ok());
        prop_assert_eq!(back.num_social_links(), san.num_social_links());
    }

    /// Subsampling preserves the social structure and never increases
    /// attribute links; keep=1 is the identity on link counts.
    #[test]
    fn subsample_bounds(san in arb_san(30, 6), seed in 0u64..100, p in 0.0f64..1.0) {
        let mut rng = SplitRng::new(seed);
        let sub = subsample_attributes(&san, p, &mut rng);
        prop_assert_eq!(sub.num_social_links(), san.num_social_links());
        prop_assert!(sub.num_attr_links() <= san.num_attr_links());
        prop_assert!(sub.check_consistency().is_ok());
    }

    /// The undirected view is symmetric and loses no connectivity.
    #[test]
    fn undirected_view_symmetric(san in arb_san(30, 0)) {
        let adj = to_undirected(&san);
        for (u, list) in adj.iter().enumerate() {
            for &v in list {
                prop_assert!(adj[v as usize].contains(&(u as u32)));
            }
        }
        for (u, v) in san.social_links() {
            prop_assert!(adj[u.index()].contains(&v.0));
        }
    }

    /// Degree bounding respects the bound and symmetry.
    #[test]
    fn degree_bound_holds(san in arb_san(30, 0), bound in 1usize..8, seed in 0u64..100) {
        let adj = to_undirected(&san);
        let mut rng = SplitRng::new(seed);
        let bounded = bound_degrees(&adj, bound, &mut rng);
        for (u, list) in bounded.iter().enumerate() {
            prop_assert!(list.len() <= bound);
            for &v in list {
                prop_assert!(bounded[v as usize].contains(&(u as u32)));
                // Bounded edges are a subset of original edges.
                prop_assert!(adj[u].contains(&v));
            }
        }
    }

    /// Induced subgraphs never contain links that were absent in the parent.
    #[test]
    fn induced_subgraph_is_subgraph(san in arb_san(30, 6), pick in prop::collection::vec(any::<u32>(), 1..15)) {
        let n = san.num_social_nodes() as u32;
        let keep: Vec<SocialId> = pick.into_iter().map(|x| SocialId(x % n)).collect();
        let sub = induced_subgraph(&san, &keep);
        prop_assert!(sub.san.check_consistency().is_ok());
        for (u, v) in sub.san.social_links() {
            let ou = sub.social_origin[u.index()];
            let ov = sub.social_origin[v.index()];
            prop_assert!(san.has_social_link(ou, ov));
        }
        for (u, a) in sub.san.attr_links() {
            let ou = sub.social_origin[u.index()];
            let oa = sub.attr_origin[a.index()];
            prop_assert!(san.has_attr_link(ou, oa));
        }
    }

    /// `San::freeze()` round-trips: the frozen CsrSan agrees with the
    /// mutable San on every `SanRead` query — counts, neighbourhoods
    /// (as sets), degrees, membership, common-neighbour features, link
    /// iteration, and attribute types.
    #[test]
    fn freeze_roundtrip_matches_san(san in arb_san(35, 7)) {
        use std::collections::BTreeSet;
        let csr = san.freeze();
        prop_assert_eq!(SanRead::num_social_nodes(&csr), san.num_social_nodes());
        prop_assert_eq!(SanRead::num_attr_nodes(&csr), san.num_attr_nodes());
        prop_assert_eq!(SanRead::num_social_links(&csr), san.num_social_links());
        prop_assert_eq!(SanRead::num_attr_links(&csr), san.num_attr_links());
        for u in san.social_nodes() {
            prop_assert_eq!(
                SanRead::out_neighbors(&csr, u).iter().collect::<BTreeSet<_>>(),
                san.out_neighbors(u).iter().collect::<BTreeSet<_>>()
            );
            prop_assert_eq!(
                SanRead::in_neighbors(&csr, u).iter().collect::<BTreeSet<_>>(),
                san.in_neighbors(u).iter().collect::<BTreeSet<_>>()
            );
            prop_assert_eq!(
                SanRead::attrs_of(&csr, u).iter().collect::<BTreeSet<_>>(),
                san.attrs_of(u).iter().collect::<BTreeSet<_>>()
            );
            prop_assert_eq!(SanRead::out_degree(&csr, u), san.out_degree(u));
            prop_assert_eq!(SanRead::in_degree(&csr, u), san.in_degree(u));
            prop_assert_eq!(SanRead::attr_degree(&csr, u), san.attr_degree(u));
            prop_assert_eq!(
                SanRead::social_neighbors(&csr, u).as_ref(),
                san.social_neighbors(u).as_slice()
            );
        }
        for a in san.attr_nodes() {
            prop_assert_eq!(
                SanRead::members_of(&csr, a).iter().collect::<BTreeSet<_>>(),
                san.members_of(a).iter().collect::<BTreeSet<_>>()
            );
            prop_assert_eq!(SanRead::attr_type(&csr, a), san.attr_type(a));
            prop_assert_eq!(
                SanRead::social_degree_of_attr(&csr, a),
                san.social_degree_of_attr(a)
            );
        }
        for u in san.social_nodes() {
            for v in san.social_nodes() {
                prop_assert_eq!(
                    SanRead::has_social_link(&csr, u, v),
                    san.has_social_link(u, v)
                );
                prop_assert_eq!(SanRead::common_attrs(&csr, u, v), san.common_attrs(u, v));
                prop_assert_eq!(
                    SanRead::common_social_neighbors(&csr, u, v),
                    san.common_social_neighbors(u, v)
                );
            }
            for a in san.attr_nodes() {
                prop_assert_eq!(
                    SanRead::has_attr_link(&csr, u, a),
                    san.has_attr_link(u, a)
                );
            }
        }
        prop_assert_eq!(
            SanRead::social_links(&csr).collect::<BTreeSet<_>>(),
            san.social_links().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(
            SanRead::attr_links(&csr).collect::<BTreeSet<_>>(),
            san.attr_links().collect::<BTreeSet<_>>()
        );
    }

    /// Generic analytics see identical results through the mutable San and
    /// its frozen snapshot (BFS, WCC, degree vectors).
    #[test]
    fn analytics_agree_on_frozen_snapshot(san in arb_san(30, 4)) {
        let csr = san.freeze();
        let d_san = bfs_directed(&san, SocialId(0));
        let d_csr = bfs_directed(&csr, SocialId(0));
        prop_assert_eq!(d_san, d_csr);
        let (_, mut sizes_san) = weakly_connected_components(&san);
        let (_, mut sizes_csr) = weakly_connected_components(&csr);
        sizes_san.sort_unstable();
        sizes_csr.sort_unstable();
        prop_assert_eq!(sizes_san, sizes_csr);
        let dv_san = degree_vectors(&san);
        let dv_csr = degree_vectors(&csr);
        prop_assert_eq!(dv_san.out, dv_csr.out);
        prop_assert_eq!(dv_san.inc, dv_csr.inc);
        prop_assert_eq!(dv_san.attr_of_social, dv_csr.attr_of_social);
        prop_assert_eq!(dv_san.social_of_attr, dv_csr.social_of_attr);
    }

    /// Timeline replay at the final day reproduces the live structure.
    #[test]
    fn timeline_replay_matches_live(
        ops in prop::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 1..150)
    ) {
        let mut tb = TimelineBuilder::new();
        let mut day = 0u32;
        for (op, x, y) in ops {
            match op {
                0 => { tb.add_social_node(); }
                1 => { tb.add_attr_node(AttrType::Other); }
                2 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    if ns >= 2 {
                        let (u, v) = (x % ns, y % ns);
                        if u != v {
                            tb.add_social_link(SocialId(u), SocialId(v));
                        }
                    }
                }
                _ => {
                    let ns = tb.san().num_social_nodes() as u32;
                    let na = tb.san().num_attr_nodes() as u32;
                    if ns >= 1 && na >= 1 {
                        tb.add_attr_link(SocialId(x % ns), AttrId(y % na));
                    }
                }
            }
            if x % 7 == 0 {
                day += 1;
                tb.advance_to_day(day);
            }
        }
        let (tl, live) = tb.finish();
        let replay = tl.final_snapshot();
        prop_assert_eq!(replay.num_social_nodes(), live.num_social_nodes());
        prop_assert_eq!(replay.num_attr_nodes(), live.num_attr_nodes());
        prop_assert_eq!(replay.num_social_links(), live.num_social_links());
        prop_assert_eq!(replay.num_attr_links(), live.num_attr_links());
        prop_assert!(replay.check_consistency().is_ok());
    }

    /// Snapshot monotonicity: counts never decrease over days.
    #[test]
    fn snapshots_monotone(
        ops in prop::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 1..100)
    ) {
        let mut tb = TimelineBuilder::new();
        let mut day = 0u32;
        for (op, x, y) in ops {
            match op {
                0 => { tb.add_social_node(); }
                1 => { tb.add_attr_node(AttrType::City); }
                2 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    if ns >= 2 && x % ns != y % ns {
                        tb.add_social_link(SocialId(x % ns), SocialId(y % ns));
                    }
                }
                _ => {
                    let ns = tb.san().num_social_nodes() as u32;
                    let na = tb.san().num_attr_nodes() as u32;
                    if ns >= 1 && na >= 1 {
                        tb.add_attr_link(SocialId(x % ns), AttrId(y % na));
                    }
                }
            }
            if x % 5 == 0 {
                day += 1;
                tb.advance_to_day(day);
            }
        }
        let (tl, _) = tb.finish();
        let counts = tl.day_counts();
        for w in counts.windows(2) {
            prop_assert!(w[1].social_nodes >= w[0].social_nodes);
            prop_assert!(w[1].attr_nodes >= w[0].attr_nodes);
            prop_assert!(w[1].social_links >= w[0].social_links);
            prop_assert!(w[1].attr_links >= w[0].attr_links);
        }
    }

    /// The crawler observes a subgraph of the truth, and with full
    /// visibility it covers the seed's whole WCC.
    #[test]
    fn crawler_subgraph_and_coverage(san in arb_san(30, 4), seed_raw in any::<u32>()) {
        let n = san.num_social_nodes() as u32;
        let seed = SocialId(seed_raw % n);
        let public = vec![true; n as usize];
        let mut crawler = san_graph::crawler::Crawler::new(vec![seed]);
        let snap = crawler.crawl(&san, &public);
        // Subgraph property.
        for (u, v) in snap.san.social_links() {
            let ou = snap.social_origin[u.index()];
            let ov = snap.social_origin[v.index()];
            prop_assert!(san.has_social_link(ou, ov));
        }
        // Full visibility: the crawl covers exactly the seed's WCC.
        let (ids, sizes) = weakly_connected_components(&san);
        let wcc_size = sizes[ids[seed.index()]];
        prop_assert_eq!(snap.san.num_social_nodes(), wcc_size);
    }
}
