//! Round-trip lockdown for the columnar snapshot store: for arbitrary
//! timelines, **freeze → write → read** is field-for-field identical to
//! the original [`CsrSan`] at every sampled day (`CsrSan`'s derived
//! `PartialEq` covers every array and counter), including empty graphs,
//! attribute-only days, and a 10k-node fixture. Vault round-trips
//! (directory + manifest) are covered at the same strength.

use proptest::prelude::*;
use san_graph::prelude::*;
use san_graph::CsrSan;
use std::path::PathBuf;

/// A fresh scratch directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "san-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Same arbitrary-timeline strategy family as `delta_equivalence`: mixed
/// node/link arrivals on both layers with multi-day gaps, so empty days,
/// link-free days and attribute-only days all occur.
fn arb_timeline(max_ops: usize) -> impl Strategy<Value = SanTimeline> {
    prop::collection::vec((0u8..6, any::<u32>(), any::<u32>()), 1..max_ops).prop_map(|ops| {
        let mut tb = TimelineBuilder::new();
        for (op, x, y) in ops {
            match op {
                0 => {
                    tb.add_social_node();
                }
                1 => {
                    let ty = match x % 4 {
                        0 => AttrType::School,
                        1 => AttrType::Major,
                        2 => AttrType::Employer,
                        _ => AttrType::City,
                    };
                    tb.add_attr_node(ty);
                }
                2 | 3 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    if ns >= 2 {
                        tb.add_social_link(SocialId(x % ns), SocialId(y % ns));
                    }
                }
                4 => {
                    let ns = tb.san().num_social_nodes() as u32;
                    let na = tb.san().num_attr_nodes() as u32;
                    if ns >= 1 && na >= 1 {
                        tb.add_attr_link(SocialId(x % ns), AttrId(y % na));
                    }
                }
                _ => {
                    tb.advance_to_day(tb.day() + 1 + (x % 3));
                }
            }
        }
        tb.finish().0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sampled day of an arbitrary timeline survives the byte
    /// round-trip exactly, and the serialised size is what
    /// `store_bytes_len` predicts.
    #[test]
    fn bytes_roundtrip_at_every_sampled_day(tl in arb_timeline(100), step in 1u32..5) {
        for (day, snap) in tl.snapshot_stream(step) {
            let bytes = snap.to_store_bytes();
            prop_assert_eq!(bytes.len() as u64, snap.store_bytes_len(), "day {}", day);
            let back = CsrSan::from_store_bytes(&bytes).expect("roundtrip");
            prop_assert_eq!(&back, &*snap, "day {}", day);
            prop_assert_eq!(back.heap_bytes(), snap.heap_bytes(), "day {}", day);
        }
    }

    /// A vault persisting every sampled day loads each one back
    /// field-for-field identical, reports the right nearest-day answers,
    /// and sums its on-disk footprint exactly.
    #[test]
    fn vault_roundtrip_at_every_sampled_day(tl in arb_timeline(80), step in 1u32..4) {
        let tmp = TempDir::new("prop");
        let mut vault = SnapshotVault::create(&tmp.0).expect("create vault");
        let saved = vault.save_timeline(&tl, step).expect("save timeline");
        let mut expected_disk = 0u64;
        for &day in &saved {
            let loaded = vault.load_day(day).expect("load day");
            prop_assert_eq!(&*loaded, &tl.snapshot_csr(day), "day {}", day);
            expected_disk += loaded.store_bytes_len();
        }
        prop_assert_eq!(vault.disk_bytes(), expected_disk);
        // nearest_at_or_before over the whole day range agrees with a
        // linear scan of the saved grid.
        if let Some(max_day) = tl.max_day() {
            for probe in 0..=max_day {
                let expect = saved.iter().copied().rfind(|&d| d <= probe);
                prop_assert_eq!(vault.nearest_at_or_before(probe), expect, "probe {}", probe);
            }
        }
        // Reopening from the manifest alone reproduces the same view.
        let reopened = SnapshotVault::open(&tmp.0).expect("reopen");
        prop_assert_eq!(reopened.days().collect::<Vec<_>>(), saved);
        prop_assert_eq!(reopened.disk_bytes(), expected_disk);
    }
}

#[test]
fn empty_graph_roundtrips() {
    let empty = San::new().freeze();
    let bytes = empty.to_store_bytes();
    let back = CsrSan::from_store_bytes(&bytes).expect("empty roundtrip");
    assert_eq!(back, empty);
    assert_eq!(bytes.len() as u64, empty.store_bytes_len());
}

/// A timeline whose later days add only attribute nodes/links (no social
/// change): the social columns stay stable across days while the
/// attribute columns grow — both round-trip.
#[test]
fn attribute_only_days_roundtrip() {
    let mut tb = TimelineBuilder::new();
    let u0 = tb.add_social_node();
    let u1 = tb.add_social_node();
    tb.add_social_link(u0, u1);
    tb.advance_to_day(1);
    let a0 = tb.add_attr_node(AttrType::School);
    tb.add_attr_link(u0, a0);
    tb.advance_to_day(2);
    let a1 = tb.add_attr_node(AttrType::City);
    tb.add_attr_link(u1, a1);
    tb.add_attr_link(u0, a1);
    let (tl, _) = tb.finish();
    for day in 0..=tl.max_day().unwrap() {
        let snap = tl.snapshot_csr(day);
        let back = CsrSan::from_store_bytes(&snap.to_store_bytes()).expect("roundtrip");
        assert_eq!(back, snap, "day {day}");
    }
}

/// All five attribute types (including `Other`, which generators never
/// emit) survive the tag encoding.
#[test]
fn every_attr_type_roundtrips() {
    let mut san = San::new();
    let u = san.add_social_node();
    for ty in [
        AttrType::School,
        AttrType::Major,
        AttrType::Employer,
        AttrType::City,
        AttrType::Other,
    ] {
        let a = san.add_attr_node(ty);
        san.add_attr_link(u, a);
    }
    let snap = san.freeze();
    let back = CsrSan::from_store_bytes(&snap.to_store_bytes()).expect("roundtrip");
    assert_eq!(back, snap);
}

/// The 10k-node fixture: a scale where the staging buffer wraps many
/// times per column, so chunk boundaries are exercised for real.
#[test]
fn ten_k_fixture_roundtrips() {
    use san_stats::SplitRng;
    let mut rng = SplitRng::new(42);
    let mut tb = TimelineBuilder::new();
    let mut users: Vec<SocialId> = vec![tb.add_social_node()];
    let attrs: Vec<AttrId> = (0..64)
        .map(|i| tb.add_attr_node(AttrType::PAPER_TYPES[i % 4]))
        .collect();
    for day in 1..=98u32 {
        tb.advance_to_day(day);
        for _ in 0..102 {
            let u = tb.add_social_node();
            for _ in 0..3 {
                let v = users[rng.below(users.len() as u64) as usize];
                tb.add_social_link(u, v);
                if rng.chance(0.3) {
                    tb.add_social_link(v, u);
                }
            }
            if rng.chance(0.4) {
                tb.add_attr_link(u, attrs[rng.below(64) as usize]);
            }
            users.push(u);
        }
    }
    let (tl, san) = tb.finish();
    assert!(san.num_social_nodes() >= 9_000, "fixture big enough");
    let snap = san.freeze();
    let bytes = snap.to_store_bytes();
    assert_eq!(bytes.len() as u64, snap.store_bytes_len());
    let back = CsrSan::from_store_bytes(&bytes).expect("10k roundtrip");
    assert_eq!(back, snap);
    assert_eq!(back.heap_bytes(), snap.heap_bytes());

    // And through a vault on disk, resumed mid-timeline.
    let tmp = TempDir::new("tenk");
    let mut vault = SnapshotVault::create(&tmp.0).expect("create");
    let mid = 49;
    let mid_snap = tl.snapshot_csr(mid);
    vault.save_day(mid, &mid_snap).expect("save");
    let loaded = vault.load_day(mid).expect("load");
    assert_eq!(*loaded, mid_snap);
}
