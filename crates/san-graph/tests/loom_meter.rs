//! `loom-lite` model checks of the metrics counters' concurrency
//! algorithm (`san_graph::meter`).
//!
//! The real [`LatencyHistogram`](san_graph::meter::LatencyHistogram) and
//! [`VaultMetrics`](san_graph::meter::VaultMetrics) run on plain `std`
//! relaxed atomics — deliberately: recording must stay wait-free on the
//! serving hit path. The model here is a **structural mirror** of their
//! update/read protocol (same operations, same order, shrunk to 4
//! buckets so the schedule space stays exhaustive), built on
//! `loom_lite` atomics so every interleaving of writer and reader steps
//! is explored. A sequential cross-check against the real type pins the
//! mirror to the production algorithm.
//!
//! What the model proves (under sequential consistency — the weak-memory
//! side of `Relaxed` is argued in the `// ORDERING:` comments that
//! `san-audit` enforces in `meter.rs`):
//!
//! * counter exactness: concurrent `record`s never lose an increment;
//! * quantile totality: a reader overlapping any number of writers
//!   always terminates inside a real bucket or the documented saturating
//!   fallback — never out of bounds — because `record` bumps the bucket
//!   *before* the count, so a reader's `count` snapshot never exceeds
//!   the bucket sum it goes on to scan;
//! * torn reads are bounded: mid-record, a reader may see the bucket
//!   updated and the count not yet (that schedule is reachable and
//!   harmless), but never a count with no backing bucket.

use loom_lite::sync::atomic::{AtomicU64, Ordering};
use san_graph::meter::LatencyHistogram;
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::Arc;
use std::time::Duration;

const MIRROR_BUCKETS: usize = 4;

/// The mirror: `LatencyHistogram`'s update/read protocol over
/// `loom_lite` atomics. Bucket index = `ilog2(nanos.max(1))`, clamped —
/// the same mapping as the real type, shrunk to [`MIRROR_BUCKETS`].
struct MirrorHistogram {
    buckets: [AtomicU64; MIRROR_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl MirrorHistogram {
    fn new() -> MirrorHistogram {
        MirrorHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    fn bucket_of(nanos: u64) -> usize {
        (nanos.max(1).ilog2() as usize).min(MIRROR_BUCKETS - 1)
    }

    /// Mirrors `LatencyHistogram::record`: bucket first, then count,
    /// then sum — the order the totality property depends on.
    fn record(&self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)].fetch_add(1, Ordering::SeqCst);
        self.count.fetch_add(1, Ordering::SeqCst);
        self.sum_nanos
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| {
                Some(s.saturating_add(nanos))
            })
            .expect("fetch_update closure always returns Some");
    }

    /// Mirrors `LatencyHistogram::quantile_nanos`' scan: snapshot the
    /// count, walk the buckets until the rank is covered. Returns
    /// `(midpoint, used_fallback)` so the model can observe whether the
    /// out-of-buckets fallback was ever needed.
    fn median(&self) -> (u64, bool) {
        let count = self.count.load(Ordering::SeqCst);
        if count == 0 {
            return (0, false);
        }
        let rank = count.div_ceil(2).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::SeqCst);
            if seen >= rank {
                return ((1u64 << i) + (1u64 << i) / 2, false);
            }
        }
        (
            (1u64 << (MIRROR_BUCKETS - 1)) + (1u64 << (MIRROR_BUCKETS - 1)) / 2,
            true,
        )
    }
}

/// Pins the mirror to the production algorithm on sequential traces:
/// same bucket choice, same median, for a spread of samples.
#[test]
fn mirror_matches_real_histogram_sequentially() {
    let real = LatencyHistogram::new();
    let mirror = MirrorHistogram::new();
    // Samples within the mirror's 4-bucket range: [1, 16) ns.
    for nanos in [1u64, 1, 2, 3, 8, 15] {
        real.record(Duration::from_nanos(nanos));
        mirror.record(nanos);
    }
    assert_eq!(real.count(), mirror.count.load(Ordering::SeqCst));
    let (mirror_median, fallback) = mirror.median();
    assert!(!fallback);
    assert_eq!(real.median_nanos(), mirror_median);
}

/// Two concurrent writers: counters are exact in every interleaving
/// (relaxed RMWs lose nothing; the model proves the algorithm, the
/// `// ORDERING:` comments argue the memory model).
#[test]
fn concurrent_records_are_exact() {
    let report = loom_lite::model(|| {
        let h = Arc::new(MirrorHistogram::new());
        let handles: Vec<_> = [1u64, 9]
            .into_iter()
            .map(|nanos| {
                let h = Arc::clone(&h);
                loom_lite::thread::spawn(move || h.record(nanos))
            })
            .collect();
        for t in handles {
            t.join().expect("model thread");
        }
        assert_eq!(h.count.load(Ordering::SeqCst), 2);
        assert_eq!(h.sum_nanos.load(Ordering::SeqCst), 10);
        let bucket_sum: u64 = (0..MIRROR_BUCKETS)
            .map(|i| h.buckets[i].load(Ordering::SeqCst))
            .sum();
        assert_eq!(bucket_sum, 2);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
}

/// A reader racing a writer mid-`record`: in every schedule the median
/// scan terminates without the fallback, because the bucket increment
/// happens before the count increment — a reader can never snapshot a
/// count larger than the bucket mass it then scans.
#[test]
fn quantile_scan_is_total_under_races() {
    let saw_mid_record = Arc::new(StdAtomicU64::new(0));
    let saw2 = Arc::clone(&saw_mid_record);
    let report = loom_lite::model(move || {
        let h = Arc::new(MirrorHistogram::new());
        h.record(2); // one settled sample
        let writer = {
            let h = Arc::clone(&h);
            loom_lite::thread::spawn(move || h.record(9))
        };
        let reader = {
            let h = Arc::clone(&h);
            let saw = Arc::clone(&saw2);
            loom_lite::thread::spawn(move || {
                let (median, fallback) = h.median();
                assert!(!fallback, "reader fell off the bucket scan");
                // Median of {2} or {2,9}: bucket 1 midpoint 3, or (rank-1
                // of 2 samples) still 3 — any reachable value is a real
                // bucket midpoint.
                assert!(median == 3 || median == 12, "median {median}");
                if h.count.load(Ordering::SeqCst) == 1 {
                    saw.store(1, StdOrdering::Relaxed); // raced mid-record
                }
            })
        };
        writer.join().expect("model thread");
        reader.join().expect("model thread");
        assert_eq!(h.count.load(Ordering::SeqCst), 2);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    assert_eq!(
        saw_mid_record.load(StdOrdering::Relaxed),
        1,
        "the mid-record schedule must be reachable"
    );
}

/// The `VaultMetrics` byte/op counter protocol (two independent
/// fetch_adds per record): totals are exact and the op counter never
/// trails the byte counter by more than one in-flight record.
#[test]
fn vault_counter_protocol_is_exact() {
    let report = loom_lite::model(|| {
        let bytes = Arc::new(AtomicU64::new(0));
        let ops = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let bytes = Arc::clone(&bytes);
                let ops = Arc::clone(&ops);
                loom_lite::thread::spawn(move || {
                    // Mirrors VaultMetrics::record_read: bytes, then ops.
                    bytes.fetch_add(100, Ordering::SeqCst);
                    ops.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in handles {
            t.join().expect("model thread");
        }
        assert_eq!(bytes.load(Ordering::SeqCst), 200);
        assert_eq!(ops.load(Ordering::SeqCst), 2);
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
}
