//! Corruption matrix for the columnar snapshot store: every way a
//! snapshot file can be damaged must come back as the **specific typed
//! [`StoreError`] variant** — never a panic, never a silently wrong
//! graph. The matrix truncates the stream at (and inside) every
//! header/array boundary, flips magic/version/checksum bytes, and
//! hand-corrupts structure behind a re-sealed checksum to isolate the
//! structural validators from the checksum.
//!
//! Every crafted case is driven through **all three read paths** — the
//! eager [`CsrSan::read_from`] stream loader, the zero-copy
//! [`CsrSanView::new`] in-memory view, and [`MappedSnapshot::open`] over
//! an actual file — and each must reject with a typed error (the same
//! variant family; never UB, never a panic on any path).
//!
//! The second half of the file repeats the exercise for the SANCSRBF v2
//! format: truncation at every compressed-column boundary, corrupt codec
//! headers and streams (behind re-sealed trailers), declared byte lengths
//! outside the codec's possible range, unknown kind bytes, and standalone
//! delta files (`DeltaWithoutBase`). The v2 "view path" is
//! [`store::decode_v2_image`] + [`CsrSanView::new`], which is exactly how
//! the mmap layer serves v2 days.

#[cfg(all(unix, not(miri)))]
use san_graph::mmap::MappedSnapshot;
use san_graph::store::{
    self, SnapshotVault, StoreError, CHECKSUM_BYTES, HEADER_BYTES, MAGIC, NUM_ARRAYS,
    V2_DELTA_HEADER_BYTES, V2_FULL_HEADER_BYTES,
};
use san_graph::view::{AlignedBytes, CsrSanView};
use san_graph::{AttrId, AttrType, CsrSan, SocialId, TimelineBuilder};

/// A snapshot with non-trivial content in every column.
fn sample_csr() -> CsrSan {
    let mut tb = TimelineBuilder::new();
    let u0 = tb.add_social_node();
    let u1 = tb.add_social_node();
    let u2 = tb.add_social_node();
    let u3 = tb.add_social_node();
    let a0 = tb.add_attr_node(AttrType::School);
    let a1 = tb.add_attr_node(AttrType::Employer);
    tb.add_social_link(u0, u1);
    tb.add_social_link(u1, u0);
    tb.add_social_link(u2, u0);
    tb.add_social_link(u3, u2);
    tb.add_attr_link(u0, a0);
    tb.add_attr_link(u1, a0);
    tb.add_attr_link(u2, a1);
    tb.finish().1.freeze()
}

/// Parses the 11 array descriptors straight from the documented header
/// layout: `(byte_offset, element_count)` per array, starting at byte 28.
fn descriptors(bytes: &[u8]) -> Vec<(u64, u64)> {
    (0..NUM_ARRAYS)
        .map(|i| {
            let at = 28 + i * 16;
            let off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            let count = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            (off, count)
        })
        .collect()
}

/// Recomputes and overwrites the trailing checksum so structural
/// corruption can be tested in isolation from [`StoreError::BadChecksum`].
fn reseal(bytes: &mut [u8]) {
    let len = bytes.len();
    let sum = store::fnv1a64(&bytes[..len - CHECKSUM_BYTES]);
    bytes[len - CHECKSUM_BYTES..].copy_from_slice(&sum.to_le_bytes());
}

fn read(bytes: &[u8]) -> Result<CsrSan, StoreError> {
    CsrSan::from_store_bytes(bytes)
}

/// Rejection through the zero-copy in-memory view path.
fn view_err(bytes: &[u8], ctx: &str) -> StoreError {
    let aligned = AlignedBytes::from_bytes(bytes);
    match CsrSanView::new(&aligned) {
        Ok(_) => panic!("{ctx}: view path must reject corrupt bytes"),
        Err(e) => e,
    }
}

/// Rejection through the mmap path: the bytes land in a real file which
/// [`MappedSnapshot::open`] must refuse to serve. Gated off under Miri:
/// the interpreter cannot call the foreign `mmap(2)`; the eager + view
/// legs of `reject_all` still cover every corruption under it.
#[cfg(all(unix, not(miri)))]
fn mapped_err(bytes: &[u8], ctx: &str) -> StoreError {
    use std::sync::atomic::{AtomicU32, Ordering};
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let path = std::env::temp_dir().join(format!(
        "san-corrupt-{}-{}.csr",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("write corrupt snapshot");
    let result = MappedSnapshot::open(&path);
    let _ = std::fs::remove_file(&path);
    match result {
        Ok(_) => panic!("{ctx}: mmap path must reject corrupt bytes"),
        Err(e) => e,
    }
}

/// The same corrupt bytes rejected by every read path (eager + view
/// everywhere, mmap on unix); each caller asserts the variant family on
/// every returned error.
fn reject_all(bytes: &[u8], ctx: &str) -> Vec<StoreError> {
    let mut errors = vec![
        match read(bytes) {
            Ok(_) => panic!("{ctx}: eager path must reject corrupt bytes"),
            Err(e) => e,
        },
        view_err(bytes, ctx),
    ];
    #[cfg(all(unix, not(miri)))]
    errors.push(mapped_err(bytes, ctx));
    errors
}

/// Truncating at every header/array boundary — and one byte inside each
/// section — always yields `Truncated` on every path, never a panic.
#[test]
fn truncation_at_every_boundary() {
    let csr = sample_csr();
    let bytes = csr.to_store_bytes();
    // Section boundaries: header end, each array's end, checksum start.
    let mut cuts: Vec<usize> = vec![0, 1, HEADER_BYTES - 1, HEADER_BYTES];
    let elem_bytes = |i: usize| if i == NUM_ARRAYS - 1 { 1 } else { 4 };
    for (i, (off, count)) in descriptors(&bytes).into_iter().enumerate() {
        let end = off as usize + count as usize * elem_bytes(i);
        cuts.push(end);
        if count > 0 {
            cuts.push(end - 1); // mid-array
        }
    }
    cuts.push(bytes.len() - 1); // inside the checksum trailer
    for cut in cuts {
        assert!(cut < bytes.len(), "cut {cut} inside file");
        for err in reject_all(&bytes[..cut], &format!("cut {cut}")) {
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut at {cut}: expected Truncated, got {err}"
            );
        }
    }
    // The untruncated stream still reads fine on every path (the matrix
    // itself is not poisoning anything).
    assert_eq!(read(&bytes).expect("full stream"), csr);
    let aligned = AlignedBytes::from_bytes(&bytes);
    assert_eq!(
        CsrSanView::new(&aligned).expect("full view").to_owned_csr(),
        csr
    );
}

/// Flipping any magic byte is `BadMagic`, reported with what was found.
#[test]
fn flipped_magic_byte() {
    let bytes = sample_csr().to_store_bytes();
    for i in 0..MAGIC.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xff;
        for err in reject_all(&bad, &format!("magic byte {i}")) {
            match err {
                StoreError::BadMagic { found } => {
                    assert_eq!(found[i], MAGIC[i] ^ 0xff);
                }
                other => panic!("byte {i}: expected BadMagic, got {other}"),
            }
        }
    }
}

/// An unknown version — higher, lower (0), or bit-flipped — is
/// `UnsupportedVersion` with the version that was found.
#[test]
fn unsupported_version() {
    let bytes = sample_csr().to_store_bytes();
    // Version 2 is a real format now, so "one past the current" means one
    // past the whole supported set.
    for version in [0u32, store::FORMAT_VERSION_V2 + 1, 0xdead_beef] {
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&version.to_le_bytes());
        for err in reject_all(&bad, &format!("version {version}")) {
            match err {
                StoreError::UnsupportedVersion { found } => assert_eq!(found, version),
                other => panic!("version {version}: expected UnsupportedVersion, got {other}"),
            }
        }
    }
}

/// Flipping any checksum trailer byte is `BadChecksum`.
#[test]
fn flipped_checksum_byte() {
    let bytes = sample_csr().to_store_bytes();
    let len = bytes.len();
    for i in (len - CHECKSUM_BYTES)..len {
        let mut bad = bytes.clone();
        bad[i] ^= 0x01;
        for err in reject_all(&bad, &format!("trailer byte {i}")) {
            assert!(
                matches!(err, StoreError::BadChecksum { .. }),
                "trailer byte {i}: expected BadChecksum, got {err}"
            );
        }
    }
}

/// Flipping a payload byte without re-sealing is caught by the checksum —
/// the random-corruption case.
#[test]
fn flipped_payload_byte_fails_checksum() {
    let csr = sample_csr();
    let bytes = csr.to_store_bytes();
    let descs = descriptors(&bytes);
    // One probe inside every non-empty payload array.
    for (i, (off, count)) in descs.iter().copied().enumerate() {
        if count == 0 {
            continue;
        }
        let mut bad = bytes.clone();
        bad[off as usize] ^= 0x80;
        for err in reject_all(&bad, &format!("payload array {i}")) {
            assert!(
                matches!(
                    err,
                    StoreError::BadChecksum { .. } | StoreError::NonMonotoneOffsets { .. }
                ),
                "array {i}: expected BadChecksum/NonMonotoneOffsets, got {err}"
            );
        }
    }
}

/// A descriptor whose byte offset does not tile the payload region is
/// `OffsetMismatch` — even with a valid checksum.
#[test]
fn descriptor_offset_mismatch() {
    let bytes = sample_csr().to_store_bytes();
    for array in [0usize, 5, NUM_ARRAYS - 1] {
        let mut bad = bytes.clone();
        let at = 28 + array * 16;
        let off = u64::from_le_bytes(bad[at..at + 8].try_into().unwrap());
        bad[at..at + 8].copy_from_slice(&(off + 4).to_le_bytes());
        reseal(&mut bad);
        for err in reject_all(&bad, &format!("descriptor {array}")) {
            assert!(
                matches!(err, StoreError::OffsetMismatch { .. }),
                "array {array}: expected OffsetMismatch, got {err}"
            );
        }
    }
}

/// Offset tables that must share the row count (out/in/ua/und) disagreeing
/// is `CountMismatch`; so are payload counts disagreeing with the header
/// link counters.
#[test]
fn count_mismatches() {
    let bytes = sample_csr().to_store_bytes();

    // in_off (descriptor 2) claims one more row than out_off. Later
    // descriptors keep their (now inconsistent) offsets, so either the
    // row-count check or the tiling check may fire first — both are typed
    // count/offset errors; assert the specific one the reader reports.
    let mut bad = bytes.clone();
    let at = 28 + 2 * 16 + 8;
    let count = u64::from_le_bytes(bad[at..at + 8].try_into().unwrap());
    bad[at..at + 8].copy_from_slice(&(count + 1).to_le_bytes());
    reseal(&mut bad);
    for err in reject_all(&bad, "row-count mismatch") {
        assert!(
            matches!(
                err,
                StoreError::CountMismatch { .. } | StoreError::OffsetMismatch { .. }
            ),
            "expected CountMismatch/OffsetMismatch, got {err}"
        );
    }

    // Header social-link counter disagreeing with the out_dst count.
    let mut bad = bytes.clone();
    let links = u64::from_le_bytes(bad[12..20].try_into().unwrap());
    bad[12..20].copy_from_slice(&(links + 1).to_le_bytes());
    reseal(&mut bad);
    for err in reject_all(&bad, "link-counter mismatch") {
        assert!(
            matches!(err, StoreError::CountMismatch { .. }),
            "expected CountMismatch, got {err}"
        );
    }
}

/// A CSR offset table that decreases mid-way — behind a valid checksum —
/// is `NonMonotoneOffsets`, not a panic and not a wrong graph.
#[test]
fn non_monotone_offsets_behind_valid_checksum() {
    let csr = sample_csr();
    let bytes = csr.to_store_bytes();
    let descs = descriptors(&bytes);
    // Offset tables are arrays 0, 2, 4, 6, 8.
    for table in [0usize, 2, 4, 6, 8] {
        let (off, count) = descs[table];
        assert!(count >= 2, "offset tables have at least two entries");
        // Blow up a middle entry so the next entry is smaller.
        let mid = off as usize + (count as usize / 2) * 4;
        let mut bad = bytes.clone();
        bad[mid..mid + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut bad);
        for err in reject_all(&bad, &format!("offset table {table}")) {
            assert!(
                matches!(
                    err,
                    StoreError::NonMonotoneOffsets { .. } | StoreError::CountMismatch { .. }
                ),
                "table {table}: expected NonMonotoneOffsets/CountMismatch, got {err}"
            );
        }
    }
    // The canonical case — a strictly decreasing interior entry in
    // out_off — reports NonMonotoneOffsets specifically on every path.
    let (off, count) = descs[0];
    assert!(count >= 3);
    let mid = off as usize + ((count as usize - 1) / 2).max(1) * 4;
    let mut bad = bytes.clone();
    bad[mid..mid + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut bad);
    for err in reject_all(&bad, "decreasing out_off") {
        assert!(
            matches!(err, StoreError::NonMonotoneOffsets { .. }),
            "{err}"
        );
    }
}

/// An id pointing past the node count — behind a valid checksum — is
/// `IdOutOfRange`; an unknown attribute-type tag is `BadAttrType`.
#[test]
fn payload_semantics_behind_valid_checksum() {
    let csr = sample_csr();
    let bytes = csr.to_store_bytes();
    let descs = descriptors(&bytes);
    // Id arrays are 1 (out_dst), 3 (in_src), 5 (ua_attr), 7 (am_user),
    // 9 (und_nbr).
    for array in [1usize, 3, 5, 7, 9] {
        let (off, count) = descs[array];
        assert!(count > 0, "sample has content in every id array");
        let mut bad = bytes.clone();
        bad[off as usize..off as usize + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        reseal(&mut bad);
        for err in reject_all(&bad, &format!("id array {array}")) {
            assert!(
                matches!(err, StoreError::IdOutOfRange { .. }),
                "array {array}: expected IdOutOfRange, got {err}"
            );
        }
    }
    let (off, count) = descs[NUM_ARRAYS - 1];
    assert!(count > 0);
    let mut bad = bytes.clone();
    bad[off as usize] = 0xee;
    reseal(&mut bad);
    for err in reject_all(&bad, "attr tag") {
        assert!(
            matches!(err, StoreError::BadAttrType { value: 0xee }),
            "{err}"
        );
    }
}

/// A crafted header declaring an absurd element count (up to 2^61) must
/// be rejected as a typed error **before any allocation** — never a
/// capacity-overflow panic or an OOM abort (and on the view/mmap paths,
/// never an out-of-bounds slice). `und_nbr` is the hardest case: its
/// count is cross-checked against no header counter, only the per-array
/// cap and tiling.
#[test]
fn absurd_header_counts_rejected_before_allocation() {
    let bytes = sample_csr().to_store_bytes();
    for array in [9usize, 0, 10] {
        for huge in [1u64 << 61, u64::from(u32::MAX) + 1, u64::MAX / 16] {
            let mut bad = bytes.clone();
            let at = 28 + array * 16 + 8;
            bad[at..at + 8].copy_from_slice(&huge.to_le_bytes());
            // Keep the descriptor chain self-consistent past the bumped
            // count so the cap check — not tiling — is what must fire.
            let elem = |i: usize| if i == NUM_ARRAYS - 1 { 1u64 } else { 4 };
            let descs = descriptors(&bad);
            let mut offset = descs[array].0 + huge.wrapping_mul(elem(array));
            for (later, desc) in descs.iter().enumerate().skip(array + 1) {
                let at = 28 + later * 16;
                bad[at..at + 8].copy_from_slice(&offset.to_le_bytes());
                offset = offset.wrapping_add(desc.1 * elem(later));
            }
            reseal(&mut bad);
            for err in reject_all(&bad, &format!("array {array} count {huge}")) {
                assert!(
                    matches!(err, StoreError::CountMismatch { .. }),
                    "array {array} count {huge}: expected CountMismatch, got {err}"
                );
            }
        }
    }
}

/// Empty input and random garbage: typed errors on every path, no panics.
#[test]
fn garbage_inputs_never_panic() {
    for err in reject_all(&[], "empty input") {
        assert!(matches!(err, StoreError::Truncated { .. }), "{err}");
    }
    let garbage: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(2654435761)) as u8)
        .collect();
    for err in reject_all(&garbage, "garbage") {
        assert!(
            matches!(
                err,
                StoreError::BadMagic { .. } | StoreError::Truncated { .. }
            ),
            "garbage: got {err}"
        );
    }
}

/// A misaligned buffer is the one failure class unique to the in-memory
/// view path: typed [`StoreError::Misaligned`], while the eager loader
/// (which copies) and the mmap path (page-aligned by construction) never
/// produce it.
#[test]
fn view_rejects_misaligned_base_only() {
    let bytes = sample_csr().to_store_bytes();
    let mut padded = vec![0u8; bytes.len() + 8];
    let base = padded.as_ptr() as usize;
    let shift = (0..4)
        .find(|s| !(base + s).is_multiple_of(4))
        .expect("misaligned offset");
    padded[shift..shift + bytes.len()].copy_from_slice(&bytes);
    let misaligned = &padded[shift..shift + bytes.len()];
    assert!(matches!(
        CsrSanView::new(misaligned).expect_err("misaligned view"),
        StoreError::Misaligned { required: 4 }
    ));
    // The eager loader is alignment-agnostic: same bytes still load.
    assert_eq!(read(misaligned).expect("eager load"), sample_csr());
}

// ---------------------------------------------------------------------------
// SANCSRBF v2: the same matrix over compressed full days and delta days.
// ---------------------------------------------------------------------------

/// [`sample_csr`] with one more day of growth layered on after the shared
/// prefix — the superset shape a real delta day records (monotone SAN
/// growth: rows only ever gain entries).
fn sample_csr_plus() -> CsrSan {
    let mut tb = TimelineBuilder::new();
    let u0 = tb.add_social_node();
    let u1 = tb.add_social_node();
    let u2 = tb.add_social_node();
    let u3 = tb.add_social_node();
    let a0 = tb.add_attr_node(AttrType::School);
    let a1 = tb.add_attr_node(AttrType::Employer);
    tb.add_social_link(u0, u1);
    tb.add_social_link(u1, u0);
    tb.add_social_link(u2, u0);
    tb.add_social_link(u3, u2);
    tb.add_attr_link(u0, a0);
    tb.add_attr_link(u1, a0);
    tb.add_attr_link(u2, a1);
    // The extra day: a new user, new links into existing rows, a new
    // attribute declaration.
    let u4 = tb.add_social_node();
    tb.add_social_link(u0, u2);
    tb.add_social_link(u4, u1);
    tb.add_attr_link(u3, a1);
    tb.finish().1.freeze()
}

/// Rejection through the v2 "view" path: [`store::decode_v2_image`]
/// decodes the compressed columns into an owned v1-layout image which
/// [`CsrSanView::new`] then validates in full — either stage may reject,
/// both with typed errors.
fn v2_view_err(bytes: &[u8], ctx: &str) -> StoreError {
    match store::decode_v2_image(bytes) {
        Err(e) => e,
        Ok(image) => match CsrSanView::new(&image) {
            Ok(_) => panic!("{ctx}: v2 image view path must reject corrupt bytes"),
            Err(e) => e,
        },
    }
}

/// The v2 analogue of [`reject_all`]: eager loader, decode-to-image view
/// path, and (on unix) [`MappedSnapshot::open`], which routes v2 files
/// through the same decoder transparently.
fn reject_all_v2(bytes: &[u8], ctx: &str) -> Vec<StoreError> {
    let mut errors = vec![
        match read(bytes) {
            Ok(_) => panic!("{ctx}: eager path must reject corrupt bytes"),
            Err(e) => e,
        },
        v2_view_err(bytes, ctx),
    ];
    #[cfg(all(unix, not(miri)))]
    errors.push(mapped_err(bytes, ctx));
    errors
}

/// v2 descriptor `i`: `(element_count, byte_len)`, read straight from the
/// documented header layout (descriptors start at byte 32).
fn v2_descriptor(bytes: &[u8], i: usize) -> (u64, u64) {
    let at = 32 + i * 16;
    (
        u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()),
        u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()),
    )
}

/// The v2 positive control, and the acceptance bar in miniature: a v2
/// full day decodes **bit-identically** to the v1 serialisation of the
/// same snapshot, on every read path, while spending fewer bytes.
#[test]
fn v2_full_roundtrips_bit_identical_on_every_path() {
    for csr in [sample_csr(), san_graph::San::new().freeze()] {
        let v1 = csr.to_store_bytes();
        let v2 = csr.to_store_bytes_v2();
        assert!(
            v2.len() < v1.len(),
            "compressed day must beat raw: {} vs {}",
            v2.len(),
            v1.len()
        );
        assert_eq!(read(&v2).expect("eager v2 load"), csr);
        let image = store::decode_v2_image(&v2).expect("decode image");
        assert_eq!(
            &image[..],
            v1.as_slice(),
            "image must be bit-identical to v1"
        );
        assert_eq!(
            CsrSanView::new(&image).expect("image view").to_owned_csr(),
            csr
        );
        #[cfg(all(unix, not(miri)))]
        {
            use std::sync::atomic::{AtomicU32, Ordering};
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let path = std::env::temp_dir().join(format!(
                "san-v2-roundtrip-{}-{}.csr",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::write(&path, &v2).expect("write v2 snapshot");
            let mapped = MappedSnapshot::open(&path).expect("open v2 mapped");
            // The handle serves the decoded v1-layout image.
            assert_eq!(mapped.mapped_bytes(), v1.len());
            assert_eq!(mapped.view().to_owned_csr(), csr);
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Truncating a v2 file at (and inside) every header/column/trailer
/// boundary is `Truncated` on every path, never a panic.
#[test]
fn v2_truncation_at_every_boundary() {
    let csr = sample_csr();
    let bytes = csr.to_store_bytes_v2();
    let mut cuts: Vec<usize> = vec![
        0,
        1,
        11,
        12,
        13,
        V2_FULL_HEADER_BYTES - 1,
        V2_FULL_HEADER_BYTES,
    ];
    // Column stream boundaries: the streams tile from the header end in
    // declared order.
    let mut offset = V2_FULL_HEADER_BYTES;
    for i in 0..NUM_ARRAYS {
        let (_, len) = v2_descriptor(&bytes, i);
        offset += len as usize;
        cuts.push(offset);
        if len > 0 {
            cuts.push(offset - 1);
        }
    }
    cuts.push(bytes.len() - 1); // inside the trailer
    for cut in cuts {
        assert!(cut < bytes.len(), "cut {cut} inside file");
        for err in reject_all_v2(&bytes[..cut], &format!("v2 cut {cut}")) {
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "v2 cut {cut}: expected Truncated, got {err}"
            );
        }
    }
    assert_eq!(read(&bytes).expect("full v2 stream"), csr);
}

/// Flipping any v2 trailer byte is `BadChecksum` on every path.
#[test]
fn v2_flipped_trailer_byte() {
    let bytes = sample_csr().to_store_bytes_v2();
    let len = bytes.len();
    for i in (len - CHECKSUM_BYTES)..len {
        let mut bad = bytes.clone();
        bad[i] ^= 0x01;
        for err in reject_all_v2(&bad, &format!("v2 trailer byte {i}")) {
            assert!(
                matches!(err, StoreError::BadChecksum { .. }),
                "v2 trailer byte {i}: expected BadChecksum, got {err}"
            );
        }
    }
}

/// An unknown kind byte — not full, not delta — is a typed codec error
/// even behind a valid trailer.
#[test]
fn v2_unknown_kind_byte() {
    let mut bad = sample_csr().to_store_bytes_v2();
    bad[12] = 9;
    reseal(&mut bad);
    for err in reject_all_v2(&bad, "v2 kind byte") {
        assert!(
            matches!(err, StoreError::BadCodec { .. }),
            "v2 kind byte: expected BadCodec, got {err}"
        );
    }
}

/// Declared column byte lengths outside the codec's possible range — more
/// than 5 bytes/value, fewer than 1 byte/value, or a tag column that is
/// not exactly 1 byte/tag — are rejected at header level, before any
/// allocation or payload access.
#[test]
fn v2_declared_byte_length_violations() {
    let bytes = sample_csr().to_store_bytes_v2();

    // A u32 column claiming more bytes than any varint stream can occupy.
    let mut bad = bytes.clone();
    let (count, _) = v2_descriptor(&bad, 1);
    let at = 32 + 16 + 8;
    bad[at..at + 8].copy_from_slice(&(count * 5 + 1).to_le_bytes());
    for err in reject_all_v2(&bad, "overlong column claim") {
        assert!(
            matches!(err, StoreError::BadCodec { .. }),
            "overlong column claim: got {err}"
        );
    }

    // A u32 column claiming fewer bytes than one varint per value.
    let mut bad = bytes.clone();
    let (count, _) = v2_descriptor(&bad, 0);
    assert!(count >= 2);
    let at = 32 + 8;
    bad[at..at + 8].copy_from_slice(&(count - 1).to_le_bytes());
    for err in reject_all_v2(&bad, "short column claim") {
        assert!(
            matches!(err, StoreError::BadCodec { .. }),
            "short column claim: got {err}"
        );
    }

    // The raw tag column must be exactly one byte per tag.
    let mut bad = bytes.clone();
    let (count, _) = v2_descriptor(&bad, NUM_ARRAYS - 1);
    let at = 32 + (NUM_ARRAYS - 1) * 16 + 8;
    bad[at..at + 8].copy_from_slice(&(count + 1).to_le_bytes());
    for err in reject_all_v2(&bad, "tag byte claim") {
        assert!(
            matches!(err, StoreError::CountMismatch { .. }),
            "tag byte claim: got {err}"
        );
    }
}

/// Corrupting a codec stream behind a re-sealed trailer — so the checksum
/// cannot be what catches it — is still a typed rejection on every path:
/// either the codec (mis-sized stream) or the downstream v1 semantic
/// validators over the decoded values.
#[test]
fn v2_corrupt_codec_stream_behind_valid_trailer() {
    let bytes = sample_csr().to_store_bytes_v2();
    let mut offset = V2_FULL_HEADER_BYTES;
    for i in 0..NUM_ARRAYS - 1 {
        let (_, len) = v2_descriptor(&bytes, i);
        if len == 0 {
            continue;
        }
        let mut bad = bytes.clone();
        // Toggle a continuation bit at the stream head: the varint grid
        // shifts and the declared byte budget no longer parses cleanly.
        bad[offset] ^= 0x80;
        reseal(&mut bad);
        for err in reject_all_v2(&bad, &format!("v2 column {i} stream")) {
            assert!(
                matches!(
                    err,
                    StoreError::BadCodec { .. }
                        | StoreError::NonMonotoneOffsets { .. }
                        | StoreError::OffsetMismatch { .. }
                        | StoreError::CountMismatch { .. }
                        | StoreError::IdOutOfRange { .. }
                        | StoreError::BadAttrType { .. }
                ),
                "v2 column {i}: got {err}"
            );
        }
        offset += len as usize;
    }
}

/// A delta day file is not a snapshot by itself: every direct read path
/// reports `DeltaWithoutBase` (naming the base day a vault would need),
/// while the owning vault reconstructs the chain fine — and a corrupted
/// delta payload surfaces typed through that chain load too.
#[test]
fn standalone_delta_file_is_delta_without_base() {
    use std::sync::atomic::{AtomicU32, Ordering};
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "san-corrupt-vault-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let base = sample_csr();
    let next = sample_csr_plus();
    let mut vault = SnapshotVault::create(&dir).expect("create vault");
    vault.save_day_v2(0, &base).expect("save base day");
    vault
        .save_day_delta(1, 0, &base, &next)
        .expect("save delta day");
    // The vault resolves the chain…
    assert_eq!(*vault.load_day(1).expect("chain load"), next);
    // …but the raw delta file alone is rejected by every direct path.
    let delta_bytes = std::fs::read(vault.day_path(1)).expect("read delta file");
    for err in reject_all_v2(&delta_bytes, "standalone delta") {
        assert!(
            matches!(err, StoreError::DeltaWithoutBase { base_day: 0 }),
            "standalone delta: expected DeltaWithoutBase, got {err}"
        );
    }
    // A continuation-bit flip in the delta payload (trailer re-sealed)
    // must fail typed through the vault's chain loader.
    let mut bad = delta_bytes.clone();
    bad[V2_DELTA_HEADER_BYTES] ^= 0x80;
    reseal(&mut bad);
    std::fs::write(vault.day_path(1), &bad).expect("rewrite delta file");
    let err = vault.load_day(1).expect_err("corrupt delta must not load");
    assert!(
        matches!(
            err,
            StoreError::BadCodec { .. }
                | StoreError::CountMismatch { .. }
                | StoreError::IdOutOfRange { .. }
        ),
        "corrupt delta: got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The one positive control: a loaded snapshot answers queries exactly
/// like the original (beyond `PartialEq`, the read path works).
#[test]
fn loaded_snapshot_answers_queries() {
    use san_graph::SanRead;
    let csr = sample_csr();
    let back = read(&csr.to_store_bytes()).expect("roundtrip");
    assert_eq!(back.num_social_nodes(), csr.num_social_nodes());
    for u in 0..csr.num_social_nodes() as u32 {
        let u = SocialId(u);
        assert_eq!(back.out_neighbors(u), csr.out_neighbors(u));
        assert_eq!(back.undirected_neighbors(u), csr.undirected_neighbors(u));
        assert_eq!(back.attrs_of(u), csr.attrs_of(u));
    }
    for a in 0..csr.num_attr_nodes() as u32 {
        assert_eq!(back.members_of(AttrId(a)), csr.members_of(AttrId(a)));
        assert_eq!(back.attr_type(AttrId(a)), csr.attr_type(AttrId(a)));
    }
}
