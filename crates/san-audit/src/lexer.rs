//! A lightweight Rust lexer: strings, comments, identifiers, punctuation
//! — just enough structure for invariant linting, with no `syn` (the
//! workspace has no registry access, and the rules only need token-level
//! patterns plus comment positions).
//!
//! Guarantees the rules rely on:
//!
//! * nothing inside a string/char/raw-string literal or a comment is
//!   ever emitted as an identifier or punctuation token (so `"unsafe"`
//!   in a message can't trip the unsafe rule);
//! * comments are collected separately with their line numbers, so
//!   annotation rules (`// SAFETY:`, `// ORDERING:`, `// BOUNDS:`) can
//!   check proximity;
//! * every token knows whether it sits in test-gated code
//!   (`#[cfg(test)]` / `#[test]` regions, or a file-level `#![cfg(test)]`),
//!   so library-only rules can skip test scaffolding.

/// What a token is. Only identifiers carry their text; the rules match
/// punctuation structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `Ordering`, ...).
    Ident(String),
    /// One punctuation character (`.`, `:`, `[`, `!`, ...).
    Punct(char),
    /// String literal (normal, raw, or byte); contents dropped.
    Str,
    /// Char or byte literal; contents dropped.
    Char,
    /// Numeric literal; contents dropped.
    Num,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
}

/// One lexed token with its source position and test-gating flag.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// 1-based source line.
    pub line: usize,
    /// True when the token sits inside `#[cfg(test)]` / `#[test]`-gated
    /// code (including everything in a file whose inner attributes gate
    /// the whole file on `test`).
    pub in_test: bool,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment (line or block, doc or plain) with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// How a file participates in the build — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` code compiled into the shipped library/binary.
    Library,
    /// `tests/` integration tests.
    Test,
    /// `benches/` benchmarks.
    Bench,
    /// `examples/`.
    Example,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    pub kind: FileKind,
    /// True for `vendor/` shim code (held to the unsafe policy but not
    /// the crate-specific panic policy).
    pub vendored: bool,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl SourceFile {
    /// Lexes `text` as the contents of `rel_path`.
    pub fn parse(rel_path: &str, kind: FileKind, text: &str) -> SourceFile {
        let (mut toks, comments) = lex(text);
        mark_test_regions(&mut toks);
        SourceFile {
            rel_path: rel_path.to_string(),
            kind,
            vendored: rel_path.starts_with("vendor/"),
            toks,
            comments,
        }
    }

    /// Comments whose text contains `needle`, anywhere in the file.
    pub fn comment_lines_containing<'a>(
        &'a self,
        needle: &'a str,
    ) -> impl Iterator<Item = usize> + 'a {
        self.comments
            .iter()
            .filter(move |c| c.text.contains(needle))
            .map(|c| c.line)
    }

    /// True when a comment containing `needle` starts within
    /// `[line - window, line]` — the proximity test every annotation
    /// rule uses.
    pub fn has_annotation_near(&self, needle: &str, line: usize, window: usize) -> bool {
        let lo = line.saturating_sub(window);
        self.comments
            .iter()
            .any(|c| c.text.contains(needle) && c.line >= lo && c.line <= line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Core lexer: one forward pass, line-counted.
fn lex(text: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    let push = |kind: TokKind, line: usize, toks: &mut Vec<Tok>| {
        toks.push(Tok {
            kind,
            line,
            in_test: false,
        });
    };

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            let start_line = line;
            let mut text = String::new();
            if b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    text.push(b[i]);
                    i += 1;
                }
            } else {
                // Nested block comments, as Rust defines them.
                let mut depth = 0usize;
                while i < n {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        text.push(b[i]);
                        i += 1;
                    }
                }
            }
            comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }
        // Raw strings and byte strings: r"..", r#".."#, br".."; b"..", b'.'.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (raw_from, is_byte_char) = if c == 'b' && i + 1 < n && b[i + 1] == 'r' {
                (i + 2, false)
            } else if c == 'r' {
                (i + 1, false)
            } else if c == 'b' && b[i + 1] == '\'' {
                (i + 1, true)
            } else if c == 'b' && b[i + 1] == '"' {
                (i + 1, false)
            } else {
                (usize::MAX, false)
            };
            if is_byte_char {
                // b'x' byte literal.
                let start_line = line;
                i = raw_from + 1; // past the opening quote
                while i < n {
                    if b[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        i += 1;
                        break;
                    }
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                push(TokKind::Char, start_line, &mut toks);
                continue;
            }
            if raw_from != usize::MAX && raw_from < n {
                let mut j = raw_from;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                let is_raw = c != 'b' || b[i + 1] == 'r';
                if j < n && b[j] == '"' && (is_raw || hashes == 0) {
                    // Raw (possibly byte) string: scan to `"` + hashes,
                    // or plain b"..." handled by the escape scanner below
                    // when not raw.
                    if is_raw {
                        let start_line = line;
                        i = j + 1;
                        'raw: while i < n {
                            if b[i] == '"' {
                                let mut k = 0usize;
                                while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    i += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            if b[i] == '\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                        push(TokKind::Str, start_line, &mut toks);
                        continue;
                    }
                    // b"..." falls through to the normal string path.
                    let start_line = line;
                    i = j + 1;
                    while i < n {
                        if b[i] == '\\' {
                            i += 2;
                            continue;
                        }
                        if b[i] == '"' {
                            i += 1;
                            break;
                        }
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    push(TokKind::Str, start_line, &mut toks);
                    continue;
                }
            }
            // Not a literal introducer: fall through to identifier.
        }
        // Normal strings.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            push(TokKind::Str, start_line, &mut toks);
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            // Lifetime: `'` + ident not closed by another `'`.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 2;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j >= n || b[j] != '\'' {
                    push(TokKind::Lifetime, line, &mut toks);
                    i = j;
                    continue;
                }
            }
            // Char literal.
            let start_line = line;
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '\'' {
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            push(TokKind::Char, start_line, &mut toks);
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut s = String::new();
            while i < n && is_ident_continue(b[i]) {
                s.push(b[i]);
                i += 1;
            }
            push(TokKind::Ident(s), line, &mut toks);
            continue;
        }
        // Numbers (lax: enough to not split `1_000`, `0xFF`, `1e-3`, `2.5`).
        if c.is_ascii_digit() {
            i += 1;
            while i < n
                && (is_ident_continue(b[i])
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                if b[i] == '.' {
                    i += 1; // consume the dot; digits continue below
                }
                i += 1;
            }
            push(TokKind::Num, line, &mut toks);
            continue;
        }
        // Everything else: single punctuation character.
        push(TokKind::Punct(c), line, &mut toks);
        i += 1;
    }
    (toks, comments)
}

/// Marks tokens inside test-gated regions.
///
/// Handles, conservatively (over-marking is lenient, never strict):
/// * `#[cfg(test)]` / `#[cfg(all(unix, test))]` / `#[test]` on an item
///   with a braced body — the attribute through the matching `}`;
/// * the same attributes on a bodiless item (`mod x;`) — through `;`;
/// * file-level `#![cfg(test)]`-style inner attributes — the whole file.
///
/// `#[cfg(not(test))]` is recognised and NOT treated as test-gating.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    let mut depth = 0usize;
    // Stack of depths at which a test region's brace opened.
    let mut test_open_depths: Vec<usize> = Vec::new();
    // True between a gating attribute and the `{`/`;` that resolves it.
    let mut pending = false;
    let mut pending_from = 0usize;
    while i < toks.len() {
        let in_test = !test_open_depths.is_empty();
        if toks[i].is_punct('#') {
            // Attribute: `#` `!`? `[` ... `]`.
            let attr_start = i;
            let mut j = i + 1;
            let inner = j < toks.len() && toks[j].is_punct('!');
            if inner {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('[') {
                let mut brackets = 1usize;
                let mut has_test = false;
                let mut has_not = false;
                let mut k = j + 1;
                while k < toks.len() && brackets > 0 {
                    if toks[k].is_punct('[') {
                        brackets += 1;
                    } else if toks[k].is_punct(']') {
                        brackets -= 1;
                    } else if let Some(id) = toks[k].ident() {
                        if id == "test" {
                            has_test = true;
                        }
                        if id == "not" {
                            has_not = true;
                        }
                    }
                    k += 1;
                }
                if has_test && !has_not {
                    if inner {
                        // Whole-file gate.
                        for t in toks.iter_mut() {
                            t.in_test = true;
                        }
                        return;
                    }
                    if !pending {
                        pending = true;
                        pending_from = attr_start;
                    }
                }
                // Attribute tokens inherit the current region state.
                for t in &mut toks[i..k] {
                    t.in_test = t.in_test || in_test;
                }
                i = k;
                continue;
            }
        }
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                if pending {
                    // The gated item's body: everything from the
                    // attribute through the matching close brace.
                    for t in &mut toks[pending_from..=i] {
                        t.in_test = true;
                    }
                    test_open_depths.push(depth);
                    pending = false;
                } else {
                    toks[i].in_test = in_test;
                }
            }
            TokKind::Punct('}') => {
                toks[i].in_test = in_test;
                if test_open_depths.last() == Some(&depth) {
                    test_open_depths.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') if pending && depth == 0 => {
                // Bodiless gated item (`mod tests;`).
                for t in &mut toks[pending_from..=i] {
                    t.in_test = true;
                }
                pending = false;
            }
            _ => {
                toks[i].in_test = in_test || pending;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(f: &SourceFile) -> Vec<(&str, bool)> {
        f.toks
            .iter()
            .filter_map(|t| t.ident().map(|s| (s, t.in_test)))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let f = SourceFile::parse(
            "x.rs",
            FileKind::Library,
            r##"
            // unsafe in a comment
            /* unsafe in /* a nested */ block */
            let s = "unsafe { }";
            let r = r#"unsafe"#;
            let c = 'u';
            "##,
        );
        assert!(idents(&f).iter().all(|(s, _)| *s != "unsafe"));
        assert_eq!(f.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::parse(
            "x.rs",
            FileKind::Library,
            "fn f<'a>(x: &'a str, c: char) { let y = 'z'; let esc = '\\''; }",
        );
        let lifetimes = f
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = f.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let f = SourceFile::parse(
            "x.rs",
            FileKind::Library,
            r#"
            fn lib_code() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
            fn more_lib() { z.unwrap(); }
            "#,
        );
        let marks: Vec<(&str, bool)> = idents(&f)
            .into_iter()
            .filter(|(s, _)| *s == "unwrap")
            .collect();
        assert_eq!(
            marks,
            vec![("unwrap", false), ("unwrap", true), ("unwrap", false)]
        );
    }

    #[test]
    fn cfg_all_test_and_test_attr_are_marked() {
        let f = SourceFile::parse(
            "x.rs",
            FileKind::Library,
            r#"
            #[cfg(all(unix, test))]
            mod model_tests;
            #[test]
            fn a_unit_test() { q.unwrap(); }
            "#,
        );
        assert!(idents(&f)
            .iter()
            .filter(|(s, _)| *s == "unwrap" || *s == "model_tests")
            .all(|(_, t)| *t));
    }

    #[test]
    fn cfg_not_test_is_not_gating() {
        let f = SourceFile::parse(
            "x.rs",
            FileKind::Library,
            "#[cfg(not(test))] fn shipped() { x.unwrap(); }",
        );
        assert!(idents(&f)
            .iter()
            .filter(|(s, _)| *s == "unwrap")
            .all(|(_, t)| !*t));
    }

    #[test]
    fn inner_cfg_test_gates_whole_file() {
        let f = SourceFile::parse(
            "x.rs",
            FileKind::Library,
            "#![cfg(test)]\nfn anything() { x.unwrap(); }",
        );
        assert!(f.toks.iter().all(|t| t.in_test));
    }

    #[test]
    fn annotation_proximity() {
        let f = SourceFile::parse(
            "x.rs",
            FileKind::Library,
            "// SAFETY: fine\nunsafe { }\n\n\n\n\n\n\n\n\n\n\n\nunsafe { }",
        );
        let lines: Vec<usize> = f
            .toks
            .iter()
            .filter(|t| t.ident() == Some("unsafe"))
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, vec![2, 14]);
        assert!(f.has_annotation_near("SAFETY:", 2, 10));
        assert!(!f.has_annotation_near("SAFETY:", 14, 10));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let f = SourceFile::parse("x.rs", FileKind::Library, "for i in 0..n { a[i] = 1.5e3; }");
        assert!(f.toks.iter().any(|t| t.ident() == Some("n")));
        assert_eq!(f.toks.iter().filter(|t| t.kind == TokKind::Num).count(), 2);
    }
}
