//! `san-audit` — the workspace invariant linter.
//!
//! A registry-free static-analysis pass over the workspace's own Rust
//! sources (a lightweight lexer, no `syn`) that enforces, as ordinary
//! `cargo test -p san-audit` failures:
//!
//! * **unsafe-safety** — every `unsafe` keyword (block, fn, or impl)
//!   carries a `// SAFETY:` justification (or a `/// # Safety` doc
//!   contract) within [`SAFETY_WINDOW`] lines, and the per-file unsafe
//!   counts match the checked-in `audit/unsafe_inventory.toml` exactly —
//!   a new unsafe site fails CI until the inventory is deliberately
//!   updated, and a removed site fails until the inventory shrinks.
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   `todo!`/`unimplemented!` in the *library* (non-test) code of
//!   [`PANIC_SCOPED_CRATES`], except sites counted by
//!   `audit/panic_allowlist.toml`. The allowlist is an exact two-way
//!   ratchet: it can only shrink.
//! * **ordering-rationale** — every `Ordering::Relaxed` in library code
//!   carries a `// ORDERING:` comment within [`ORDERING_WINDOW`] lines
//!   arguing why relaxed memory ordering is sufficient.
//! * **store-error-coverage** — every `StoreError` variant is actually
//!   constructed by library code *and* exercised by the corruption
//!   matrix (`tests/store_corruption.rs`), minus a named exempt set.
//! * **untrusted-indexing** — direct `bytes[..]` / `buf[..]` indexing in
//!   the snapshot decode paths (`store.rs`, `view.rs`) carries a
//!   `// BOUNDS:` comment within [`BOUNDS_WINDOW`] lines proving the
//!   index is in range for untrusted input.
//!
//! The pass never executes workspace code: it lexes text. Tokens inside
//! string/char literals and comments are invisible to the rules, so a
//! log message mentioning `unwrap` cannot trip the linter.

pub mod lexer;
pub mod manifest;
pub mod rules;

use lexer::{FileKind, SourceFile};
use manifest::Manifest;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lines above an `unsafe` keyword a `SAFETY:` / `# Safety` comment may
/// sit (fn-level contracts document a handful of sites below them).
pub const SAFETY_WINDOW: usize = 12;
/// Lines above an `Ordering::Relaxed` an `ORDERING:` comment may sit.
pub const ORDERING_WINDOW: usize = 10;
/// Lines above an untrusted index a `BOUNDS:` comment may sit.
pub const BOUNDS_WINDOW: usize = 6;

/// Crates whose library code is held to the panic-freedom policy: the
/// snapshot data plane. (Model/stats/bench crates exit noisily by
/// design; the serving path must not.)
pub const PANIC_SCOPED_CRATES: [&str; 5] = [
    "crates/san-graph/src/",
    "crates/san-serve/src/",
    "crates/san-metrics/src/",
    "crates/san-net/src/",
    "crates/san-obs/src/",
];

/// `StoreError` variants legitimately outside the corruption matrix,
/// with the reason they are exempt.
pub const CORRUPTION_EXEMPT: [(&str, &str); 3] = [
    (
        "BadManifest",
        "vault manifest text parsing, covered by vault tests, not byte corruption",
    ),
    (
        "DayNotPersisted",
        "lookup miss, not a decode failure; covered by vault/serve tests",
    ),
    (
        "Io",
        "OS-level failure injected by the filesystem, not by corrupt bytes",
    ),
];

/// One rule violation. The audit's test fails iff any exist.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired (`unsafe-safety`, `panic-freedom`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// The lexed workspace: every `.rs` file under `crates/` and `vendor/`.
#[derive(Debug)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace from already-lexed files — how the negative
    /// tests plant violations without touching the real tree.
    pub fn from_files(files: Vec<SourceFile>) -> Workspace {
        Workspace { files }
    }

    /// Lexes every `.rs` file under `root/crates` and `root/vendor`,
    /// skipping build output. Deterministic order (sorted paths).
    pub fn load_from(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        for top in ["crates", "vendor"] {
            collect_rs(&root.join(top), &mut paths)?;
        }
        paths.sort();
        let mut files = Vec::new();
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .expect("collected under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = fs::read_to_string(&p)?;
            files.push(SourceFile::parse(&rel, classify(&rel), &text));
        }
        Ok(Workspace { files })
    }

    /// The file at `rel_path`, if the workspace has it.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// The workspace root when running inside `cargo test -p san-audit`:
/// two levels up from this crate's manifest.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// How a path participates in the build. Directory layout is the source
/// of truth (cargo's own convention).
pub fn classify(rel_path: &str) -> FileKind {
    if rel_path.contains("/tests/") {
        FileKind::Test
    } else if rel_path.contains("/benches/") {
        FileKind::Bench
    } else if rel_path.contains("/examples/") {
        FileKind::Example
    } else {
        FileKind::Library
    }
}

/// The loaded audit: workspace sources plus the checked-in manifests.
pub struct Audit {
    pub ws: Workspace,
    pub unsafe_inventory: Manifest,
    pub panic_allowlist: Manifest,
}

impl Audit {
    /// Loads the real workspace and its `audit/` manifests.
    pub fn load() -> Result<Audit, String> {
        let root = workspace_root();
        let ws = Workspace::load_from(&root).map_err(|e| format!("walk workspace: {e}"))?;
        let read = |name: &str| -> Result<Manifest, String> {
            let path = root.join("audit").join(name);
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            manifest::parse(&text).map_err(|e| format!("{name}: {e}"))
        };
        Ok(Audit {
            ws,
            unsafe_inventory: read("unsafe_inventory.toml")?,
            panic_allowlist: read("panic_allowlist.toml")?,
        })
    }

    /// Runs every rule; the returned list is empty iff the workspace is
    /// clean.
    pub fn run_all(&self) -> Vec<Violation> {
        let mut v = Vec::new();
        v.extend(rules::unsafe_safety(&self.ws, &self.unsafe_inventory));
        v.extend(rules::panic_freedom(&self.ws, &self.panic_allowlist));
        v.extend(rules::ordering_rationale(&self.ws));
        v.extend(rules::store_error_coverage(&self.ws));
        v.extend(rules::untrusted_indexing(&self.ws));
        v
    }
}

/// Renders the unsafe inventory for the current workspace — what
/// `audit/unsafe_inventory.toml` must contain, byte for byte (modulo the
/// header comment). Used by `examples/regen_manifests.rs`.
pub fn render_unsafe_inventory(ws: &Workspace) -> String {
    render_counts("site", &rules::unsafe_counts(ws))
}

/// Renders the panic allowlist for the current workspace. The ratchet:
/// regenerate only when a site was *removed*; adding one should instead
/// be fixed.
pub fn render_panic_allowlist(ws: &Workspace) -> String {
    render_counts("allow", &rules::panic_counts(ws))
}

fn render_counts(table: &str, counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::new();
    for (file, count) in counts {
        out.push_str(&format!(
            "[[{table}]]\nfile = \"{file}\"\ncount = {count}\n\n"
        ));
    }
    out
}
