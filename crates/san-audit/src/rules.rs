//! The audit rules. Each is a pure function from lexed sources (plus,
//! where ratcheted, a checked-in manifest) to a list of [`Violation`]s.
//! Rules work on token streams, never on raw text, so literals and
//! comments can't produce false positives.

use crate::lexer::{FileKind, SourceFile, Tok, TokKind};
use crate::manifest::Manifest;
use crate::{
    Violation, Workspace, BOUNDS_WINDOW, CORRUPTION_EXEMPT, ORDERING_WINDOW, PANIC_SCOPED_CRATES,
    SAFETY_WINDOW,
};
use std::collections::BTreeMap;

fn violation(rule: &'static str, file: &str, line: usize, message: String) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line,
        message,
    }
}

/// Lines of `unsafe` keywords in `f`, every file kind (tests write
/// unsafe too, and theirs needs justifying just the same).
fn unsafe_lines(f: &SourceFile) -> Vec<usize> {
    f.toks
        .iter()
        .filter(|t| t.ident() == Some("unsafe"))
        .map(|t| t.line)
        .collect()
}

/// Per-file unsafe counts across the whole workspace (vendor included).
pub fn unsafe_counts(ws: &Workspace) -> BTreeMap<String, usize> {
    ws.files
        .iter()
        .map(|f| (f.rel_path.clone(), unsafe_lines(f).len()))
        .filter(|(_, n)| *n > 0)
        .collect()
}

/// Rule 1: every `unsafe` keyword carries a nearby `// SAFETY:` comment
/// (or a `/// # Safety` doc contract), and per-file counts match the
/// checked-in inventory exactly in both directions.
pub fn unsafe_safety(ws: &Workspace, inventory: &Manifest) -> Vec<Violation> {
    const RULE: &str = "unsafe-safety";
    let mut out = Vec::new();
    for f in &ws.files {
        for line in unsafe_lines(f) {
            let justified = f.has_annotation_near("SAFETY:", line, SAFETY_WINDOW)
                || f.has_annotation_near("# Safety", line, SAFETY_WINDOW);
            if !justified {
                out.push(violation(
                    RULE,
                    &f.rel_path,
                    line,
                    format!(
                        "`unsafe` without a `// SAFETY:` justification within {SAFETY_WINDOW} lines"
                    ),
                ));
            }
        }
    }
    // Inventory ratchet: exact in both directions.
    let actual = unsafe_counts(ws);
    let allowed: BTreeMap<&str, u64> = inventory
        .entries("site")
        .map(|e| (e.str("file"), e.int("count")))
        .collect();
    for (file, n) in &actual {
        match allowed.get(file.as_str()) {
            None => out.push(violation(
                RULE,
                file,
                0,
                format!(
                    "{n} unsafe site(s) in a file absent from audit/unsafe_inventory.toml — \
                     new unsafe requires a deliberate inventory update"
                ),
            )),
            Some(&a) if a != *n as u64 => out.push(violation(
                RULE,
                file,
                0,
                format!(
                    "unsafe count drifted from inventory: {n} in source, {a} inventoried — \
                     update audit/unsafe_inventory.toml to match"
                ),
            )),
            Some(_) => {}
        }
    }
    for file in allowed.keys() {
        if !actual.contains_key(*file) {
            out.push(violation(
                RULE,
                file,
                0,
                "inventoried file has no unsafe left (or vanished) — shrink the inventory"
                    .to_string(),
            ));
        }
    }
    out
}

/// True when this file's library (non-test) code is in panic-freedom
/// scope.
fn in_panic_scope(f: &SourceFile) -> bool {
    f.kind == FileKind::Library
        && !f.vendored
        && PANIC_SCOPED_CRATES
            .iter()
            .any(|p| f.rel_path.starts_with(p))
}

/// Lines of panic sites in `f`'s non-test code: `.unwrap(` / `.expect(`
/// method calls and `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` macro invocations.
fn panic_lines(f: &SourceFile) -> Vec<usize> {
    let toks = &f.toks;
    let mut lines = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next = toks.get(i + 1);
        let next_bang = next.is_some_and(|n| n.is_punct('!'));
        let next_paren = next.is_some_and(|n| n.is_punct('('));
        let is_site = match id {
            "unwrap" | "expect" => prev_dot && next_paren,
            "panic" | "unreachable" | "todo" | "unimplemented" => !prev_dot && next_bang,
            _ => false,
        };
        if is_site {
            lines.push(t.line);
        }
    }
    lines
}

/// Per-file panic-site counts over panic-scoped library code.
pub fn panic_counts(ws: &Workspace) -> BTreeMap<String, usize> {
    ws.files
        .iter()
        .filter(|f| in_panic_scope(f))
        .map(|f| (f.rel_path.clone(), panic_lines(f).len()))
        .filter(|(_, n)| *n > 0)
        .collect()
}

/// Rule 2: panic-freedom ratchet over the serving data plane. Both
/// directions are exact: a new site fails until fixed (never by growing
/// the allowlist — fix the code), a removed site fails until the
/// allowlist shrinks, so the checked-in count is always the true count.
pub fn panic_freedom(ws: &Workspace, allowlist: &Manifest) -> Vec<Violation> {
    const RULE: &str = "panic-freedom";
    let mut out = Vec::new();
    let actual = panic_counts(ws);
    let allowed: BTreeMap<&str, u64> = allowlist
        .entries("allow")
        .map(|e| (e.str("file"), e.int("count")))
        .collect();
    for (file, n) in &actual {
        let a = allowed.get(file.as_str()).copied().unwrap_or(0);
        if *n as u64 > a {
            // Point at the concrete sites so the failure is actionable.
            let f = ws.file(file).expect("counted file is in workspace");
            let lines = panic_lines(f);
            out.push(violation(
                RULE,
                file,
                lines.last().copied().unwrap_or(0),
                format!(
                    "{n} panic site(s) (unwrap/expect/panic!/…) in library code, allowlist \
                     permits {a} — convert the new site to a typed error (lines: {lines:?})"
                ),
            ));
        } else if (*n as u64) < a {
            out.push(violation(
                RULE,
                file,
                0,
                format!(
                    "panic sites burned down ({n} < allowlisted {a}) — ratchet \
                     audit/panic_allowlist.toml down so they can't come back"
                ),
            ));
        }
    }
    for (file, a) in &allowed {
        if *a > 0 && !actual.contains_key(*file) {
            out.push(violation(
                RULE,
                file,
                0,
                "allowlisted file now has zero panic sites (or vanished) — remove its entry"
                    .to_string(),
            ));
        }
    }
    out
}

/// Lines where the token sequence `Ordering :: Relaxed` occurs in
/// non-test code of `f`.
fn relaxed_lines(f: &SourceFile) -> Vec<usize> {
    let t = &f.toks;
    let mut lines = Vec::new();
    for i in 0..t.len().saturating_sub(3) {
        if t[i].in_test {
            continue;
        }
        if t[i].ident() == Some("Ordering")
            && t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].ident() == Some("Relaxed")
        {
            lines.push(t[i + 3].line);
        }
    }
    lines
}

/// Rule 3: every relaxed atomic in library code argues its memory-model
/// correctness in a `// ORDERING:` comment. Test code is exempt (it
/// asserts on quiesced state), vendor shims are exempt (their docs cover
/// it crate-wide).
pub fn ordering_rationale(ws: &Workspace) -> Vec<Violation> {
    const RULE: &str = "ordering-rationale";
    let mut out = Vec::new();
    for f in &ws.files {
        if f.kind != FileKind::Library || f.vendored {
            continue;
        }
        for line in relaxed_lines(f) {
            if !f.has_annotation_near("ORDERING:", line, ORDERING_WINDOW) {
                out.push(violation(
                    RULE,
                    &f.rel_path,
                    line,
                    format!(
                        "`Ordering::Relaxed` without an `// ORDERING:` rationale within \
                         {ORDERING_WINDOW} lines"
                    ),
                ));
            }
        }
    }
    out
}

/// Variant names of `enum StoreError` parsed from a token stream: idents
/// at brace depth 1 directly after the opening `{` or a depth-1 `,`.
fn store_error_variants(f: &SourceFile) -> Vec<String> {
    let t = &f.toks;
    let mut i = 0;
    while i + 1 < t.len() {
        if t[i].ident() == Some("enum") && t[i + 1].ident() == Some("StoreError") {
            break;
        }
        i += 1;
    }
    let mut variants = Vec::new();
    // Find the opening brace.
    while i < t.len() && !t[i].is_punct('{') {
        i += 1;
    }
    if i == t.len() {
        return variants;
    }
    let mut depth = 1usize;
    let mut expect_variant = true;
    i += 1;
    while i < t.len() && depth > 0 {
        match &t[i].kind {
            TokKind::Punct('{') | TokKind::Punct('(') => {
                depth += 1;
            }
            TokKind::Punct('}') | TokKind::Punct(')') => {
                depth -= 1;
            }
            TokKind::Punct(',') if depth == 1 => {
                expect_variant = true;
            }
            TokKind::Punct('#') => {} // attribute on the variant
            TokKind::Punct('[') | TokKind::Punct(']') => {}
            TokKind::Ident(name) if depth == 1 && expect_variant => {
                variants.push(name.clone());
                expect_variant = false;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// Lines in `f` (filtered by `in_test`) referencing `StoreError::<v>`.
fn references_variant(f: &SourceFile, variant: &str, want_test: Option<bool>) -> bool {
    let t = &f.toks;
    (0..t.len().saturating_sub(3)).any(|i| {
        want_test.is_none_or(|w| t[i].in_test == w)
            && t[i].ident() == Some("StoreError")
            && t[i + 1].is_punct(':')
            && t[i + 2].is_punct(':')
            && t[i + 3].ident() == Some(variant)
    })
}

/// Rule 4: `StoreError` exhaustiveness — every variant is constructed by
/// reachable library code (no dead error taxonomy) and exercised by the
/// corruption matrix, except the named [`CORRUPTION_EXEMPT`] set. A
/// variant in the exempt set that *is* in the matrix is also flagged, so
/// the exempt list can't go stale.
pub fn store_error_coverage(ws: &Workspace) -> Vec<Violation> {
    const RULE: &str = "store-error-coverage";
    const STORE: &str = "crates/san-graph/src/store.rs";
    const MATRIX: &str = "crates/san-graph/tests/store_corruption.rs";
    let mut out = Vec::new();
    let Some(store) = ws.file(STORE) else {
        out.push(violation(RULE, STORE, 0, "store.rs missing".to_string()));
        return out;
    };
    let variants = store_error_variants(store);
    if variants.is_empty() {
        out.push(violation(
            RULE,
            STORE,
            0,
            "could not find `enum StoreError` variants".to_string(),
        ));
        return out;
    }
    let matrix = ws.file(MATRIX);
    for v in &variants {
        let constructed = ws
            .files
            .iter()
            .filter(|f| f.kind == FileKind::Library && !f.vendored)
            .any(|f| references_variant(f, v, Some(false)));
        if !constructed {
            out.push(violation(
                RULE,
                STORE,
                0,
                format!("StoreError::{v} is never constructed by library code — dead variant"),
            ));
        }
        let exempt = CORRUPTION_EXEMPT.iter().find(|(name, _)| name == v);
        let in_matrix = matrix.is_some_and(|m| references_variant(m, v, None));
        match (exempt, in_matrix) {
            (None, false) => out.push(violation(
                RULE,
                MATRIX,
                0,
                format!(
                    "StoreError::{v} is not exercised by the corruption matrix — add a \
                     corruption case or an entry to CORRUPTION_EXEMPT with a reason"
                ),
            )),
            (Some((_, why)), true) => out.push(violation(
                RULE,
                MATRIX,
                0,
                format!(
                    "StoreError::{v} is exempt (\"{why}\") but the corruption matrix now \
                     covers it — remove the stale exemption"
                ),
            )),
            _ => {}
        }
    }
    out
}

/// Files whose byte-slice indexing handles *untrusted* input (snapshot
/// decode paths and socket-facing parsers).
const UNTRUSTED_FILES: [&str; 6] = [
    "crates/san-graph/src/codec.rs",
    "crates/san-graph/src/store.rs",
    "crates/san-graph/src/view.rs",
    "crates/san-graph/src/wire.rs",
    "crates/san-net/src/admin.rs",
    "crates/san-net/src/proto.rs",
];

/// Rule 5: direct indexing of `bytes`/`buf` in the decode paths must
/// justify its range with a `// BOUNDS:` comment — indexing untrusted
/// offsets is how corrupt snapshots turn into panics.
pub fn untrusted_indexing(ws: &Workspace) -> Vec<Violation> {
    const RULE: &str = "untrusted-indexing";
    let mut out = Vec::new();
    for f in &ws.files {
        if !UNTRUSTED_FILES.contains(&f.rel_path.as_str()) {
            continue;
        }
        let t = &f.toks;
        for i in 0..t.len().saturating_sub(1) {
            if t[i].in_test {
                continue;
            }
            let is_buf = matches!(t[i].ident(), Some("bytes") | Some("buf"));
            if is_buf && t[i + 1].is_punct('[') && !is_field_access(t, i) {
                let line = t[i].line;
                if !f.has_annotation_near("BOUNDS:", line, BOUNDS_WINDOW) {
                    out.push(violation(
                        RULE,
                        &f.rel_path,
                        line,
                        format!(
                            "indexing `{}` without a `// BOUNDS:` justification within \
                             {BOUNDS_WINDOW} lines",
                            t[i].ident().unwrap_or("?")
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// `x.bytes[..]` is field access on a typed struct, not a raw slice of
/// untrusted input; the rule targets local `bytes[..]` only.
fn is_field_access(t: &[Tok], i: usize) -> bool {
    i > 0 && t[i - 1].is_punct('.')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn lib(path: &str, text: &str) -> SourceFile {
        SourceFile::parse(path, crate::classify(path), text)
    }

    #[test]
    fn panic_sites_need_call_shape() {
        let f = lib(
            "crates/san-graph/src/x.rs",
            r#"
            fn a(o: Option<u8>) {
                o.unwrap();          // site
                let unwrap = 1;      // not a site: no dot/paren
                self.expect_more();  // not a site: different method
                panic!("boom");      // site
                should_panic();      // not a site
            }
            "#,
        );
        assert_eq!(panic_lines(&f).len(), 2);
    }

    #[test]
    fn relaxed_needs_full_path() {
        let f = lib(
            "crates/san-graph/src/x.rs",
            "a.load(Ordering::Relaxed); let Relaxed = 1; Ordering::SeqCst;",
        );
        assert_eq!(relaxed_lines(&f).len(), 1);
    }

    #[test]
    fn store_error_variant_parse_handles_fields() {
        let f = lib(
            "crates/san-graph/src/store.rs",
            r#"
            pub enum StoreError {
                Truncated { section: &'static str },
                BadMagic { found: [u8; 8] },
                Io(io::Error),
            }
            "#,
        );
        assert_eq!(
            store_error_variants(&f),
            vec!["Truncated", "BadMagic", "Io"]
        );
    }
}
