//! A hand-written parser for the TOML subset the audit manifests use —
//! `[[section]]` array-of-tables with `key = "string"` / `key = integer`
//! entries, `#` comments and blank lines. No registry TOML crate (the
//! workspace builds without registry access), and the manifests are
//! machine-regenerated so the subset never needs to grow.

use std::collections::BTreeMap;
use std::fmt;

/// One `[[name]]` table: string and integer keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Entry {
    pub strings: BTreeMap<String, String>,
    pub ints: BTreeMap<String, u64>,
}

impl Entry {
    /// The string value for `key`, or `""`.
    pub fn str(&self, key: &str) -> &str {
        self.strings.get(key).map(String::as_str).unwrap_or("")
    }

    /// The integer value for `key`, or 0.
    pub fn int(&self, key: &str) -> u64 {
        self.ints.get(key).copied().unwrap_or(0)
    }
}

/// A parsed manifest: `[[table]]` entries in file order, grouped by name.
#[derive(Debug, Default)]
pub struct Manifest {
    pub tables: Vec<(String, Entry)>,
}

impl Manifest {
    /// All entries of the `[[name]]` tables, in file order.
    pub fn entries<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Entry> + 'a {
        self.tables
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, e)| e)
    }
}

/// A manifest syntax error with its 1-based line.
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, reason: impl Into<String>) -> ParseError {
    ParseError {
        line,
        reason: reason.into(),
    }
}

/// Parses the manifest subset. Strict: anything outside the subset is an
/// error, so a hand-edit that silently changes meaning cannot slip by.
pub fn parse(text: &str) -> Result<Manifest, ParseError> {
    let mut m = Manifest::default();
    let mut current: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(lineno, format!("bad table name {name:?}")));
            }
            m.tables.push((name.to_string(), Entry::default()));
            current = Some(m.tables.len() - 1);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
        };
        let Some(cur) = current else {
            return Err(err(lineno, "key outside any [[table]]"));
        };
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(lineno, format!("bad key {key:?}")));
        }
        let value = line[eq + 1..].trim();
        let entry = &mut m.tables[cur].1;
        if let Some(rest) = value.strip_prefix('"') {
            // Strings: no escapes needed — paths and identifiers only.
            let Some(s) = rest.strip_suffix('"') else {
                return Err(err(lineno, "unterminated string"));
            };
            if s.contains('"') || s.contains('\\') {
                return Err(err(lineno, "escapes not supported in manifest strings"));
            }
            entry.strings.insert(key.to_string(), s.to_string());
        } else {
            let Ok(n) = value.parse::<u64>() else {
                return Err(err(
                    lineno,
                    format!("expected integer or string, got {value:?}"),
                ));
            };
            entry.ints.insert(key.to_string(), n);
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_strings_and_ints() {
        let m = parse(
            r#"
            # unsafe inventory
            [[site]]
            file = "crates/san-graph/src/mmap.rs"
            count = 5

            [[site]]
            file = "crates/san-graph/src/view.rs"
            count = 3
            "#,
        )
        .expect("parse");
        let sites: Vec<_> = m.entries("site").collect();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].str("file"), "crates/san-graph/src/mmap.rs");
        assert_eq!(sites[1].int("count"), 3);
    }

    #[test]
    fn rejects_out_of_subset_syntax() {
        assert!(parse("[single_bracket]").is_err());
        assert!(parse("[[s]]\nkey = 'single quotes'").is_err());
        assert!(parse("[[s]]\nkey = \"unterminated").is_err());
        assert!(parse("key_before_table = 1").is_err());
        assert!(parse("[[s]]\nkey = [1, 2]").is_err());
        assert!(parse("[[s]]\nkey = \"back\\\\slash\"").is_err());
    }
}
