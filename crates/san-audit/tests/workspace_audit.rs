//! The gate: runs every audit rule over the real workspace sources.
//! `cargo test -p san-audit` fails iff any invariant is violated.

use san_audit::Audit;

#[test]
fn workspace_is_clean() {
    let audit = Audit::load().expect("load workspace and audit/ manifests");
    // Sanity: the walk actually found the tree (a broken root path would
    // otherwise vacuously pass every rule).
    assert!(
        audit.ws.files.len() > 50,
        "suspiciously few files lexed: {}",
        audit.ws.files.len()
    );
    assert!(
        audit.ws.file("crates/san-graph/src/store.rs").is_some(),
        "store.rs not found — workspace walk is broken"
    );
    let violations = audit.run_all();
    assert!(
        violations.is_empty(),
        "{} audit violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The unsafe surface stays small and known: only the mmap and
/// zero-copy view modules, plus the one-instruction TSC read in the
/// trace clock, may contain `unsafe` at all.
#[test]
fn unsafe_stays_confined_to_known_modules() {
    let audit = Audit::load().expect("load");
    let counts = san_audit::rules::unsafe_counts(&audit.ws);
    let allowed_files = [
        "crates/san-graph/src/mmap.rs",
        "crates/san-graph/src/view.rs",
        "crates/san-obs/src/clock.rs",
    ];
    for file in counts.keys() {
        assert!(
            allowed_files.contains(&file.as_str()),
            "unsafe escaped its confinement into {file}"
        );
    }
}

/// The panic allowlist only ever shrinks. This pins the current total so
/// a regenerated allowlist that *grew* fails even though the two-way
/// ratchet alone would accept it.
#[test]
fn panic_allowlist_total_is_ratcheted() {
    // PR 6 burned the library panic count from 37 down to 2 (the
    // statically-infallible `SnapshotSource::Replay` expects in
    // san-metrics::evolution). Lower is better: when you remove sites,
    // ratchet this down with the allowlist.
    const MAX_TOTAL: u64 = 2;
    let audit = Audit::load().expect("load");
    let total: u64 = audit
        .panic_allowlist
        .entries("allow")
        .map(|e| e.int("count"))
        .sum();
    assert!(
        total <= MAX_TOTAL,
        "panic allowlist grew to {total} sites (cap {MAX_TOTAL}) — fix the new \
         panic sites instead of allowlisting them"
    );
}
