//! Negative tests: plant each class of violation in a synthetic
//! workspace and prove the audit catches it. (The real-workspace gate in
//! `workspace_audit.rs` proves zero false positives; these prove the
//! rules aren't vacuous.)

use san_audit::lexer::SourceFile;
use san_audit::manifest::{self, Manifest};
use san_audit::rules;
use san_audit::{classify, Workspace};

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::from_files(
        files
            .iter()
            .map(|(path, text)| SourceFile::parse(path, classify(path), text))
            .collect(),
    )
}

fn empty_manifest() -> Manifest {
    manifest::parse("").expect("empty manifest parses")
}

fn rules_of(violations: &[san_audit::Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn unjustified_unsafe_is_caught() {
    let w = ws(&[(
        "crates/san-graph/src/planted.rs",
        "pub fn f(p: *const u8) -> u8 { unsafe { *p } }",
    )]);
    let inv = manifest::parse("[[site]]\nfile = \"crates/san-graph/src/planted.rs\"\ncount = 1\n")
        .expect("parse");
    let v = rules::unsafe_safety(&w, &inv);
    assert_eq!(rules_of(&v), vec!["unsafe-safety"]);
    assert!(v[0].message.contains("SAFETY"), "{}", v[0].message);
}

#[test]
fn justified_unsafe_passes() {
    let w = ws(&[(
        "crates/san-graph/src/planted.rs",
        "// SAFETY: caller contract guarantees p is valid\npub fn f(p: *const u8) -> u8 { unsafe { *p } }",
    )]);
    let inv = manifest::parse("[[site]]\nfile = \"crates/san-graph/src/planted.rs\"\ncount = 1\n")
        .expect("parse");
    assert!(rules::unsafe_safety(&w, &inv).is_empty());
}

#[test]
fn new_unsafe_site_fails_the_inventory_ratchet() {
    // Justified, but not inventoried: still fails.
    let w = ws(&[(
        "crates/san-graph/src/planted.rs",
        "// SAFETY: fine\npub fn f(p: *const u8) -> u8 { unsafe { *p } }",
    )]);
    let v = rules::unsafe_safety(&w, &empty_manifest());
    assert_eq!(rules_of(&v), vec!["unsafe-safety"]);
    assert!(v[0].message.contains("inventory"), "{}", v[0].message);
}

#[test]
fn stale_inventory_entry_fails() {
    let w = ws(&[("crates/san-graph/src/clean.rs", "pub fn f() {}")]);
    let inv = manifest::parse("[[site]]\nfile = \"crates/san-graph/src/clean.rs\"\ncount = 2\n")
        .expect("parse");
    let v = rules::unsafe_safety(&w, &inv);
    assert_eq!(rules_of(&v), vec!["unsafe-safety"]);
    assert!(v[0].message.contains("shrink"), "{}", v[0].message);
}

#[test]
fn library_unwrap_is_caught_and_located() {
    let w = ws(&[(
        "crates/san-serve/src/planted.rs",
        "pub fn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}",
    )]);
    let v = rules::panic_freedom(&w, &empty_manifest());
    assert_eq!(rules_of(&v), vec!["panic-freedom"]);
    assert_eq!(v[0].line, 2);
    assert!(v[0].message.contains("lines: [2]"), "{}", v[0].message);
}

#[test]
fn test_code_and_out_of_scope_crates_may_panic() {
    let w = ws(&[
        // Unit-test region of a scoped crate.
        (
            "crates/san-graph/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t(o: Option<u8>) { o.unwrap(); } }",
        ),
        // Integration test of a scoped crate.
        (
            "crates/san-serve/tests/t.rs",
            "fn t(o: Option<u8>) { o.unwrap(); }",
        ),
        // Library code of an unscoped crate (CLI/bench tooling).
        (
            "crates/san-bench/src/lib.rs",
            "fn t(o: Option<u8>) { o.unwrap(); }",
        ),
    ]);
    assert!(rules::panic_freedom(&w, &empty_manifest()).is_empty());
}

#[test]
fn burned_down_sites_must_ratchet_the_allowlist() {
    let w = ws(&[(
        "crates/san-graph/src/x.rs",
        "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }",
    )]);
    let allow = manifest::parse("[[allow]]\nfile = \"crates/san-graph/src/x.rs\"\ncount = 3\n")
        .expect("parse");
    let v = rules::panic_freedom(&w, &allow);
    assert_eq!(rules_of(&v), vec!["panic-freedom"]);
    assert!(v[0].message.contains("ratchet"), "{}", v[0].message);
}

#[test]
fn unwrap_in_string_literal_is_not_a_site() {
    let w = ws(&[(
        "crates/san-graph/src/x.rs",
        r#"pub fn f() -> &'static str { "call .unwrap() and panic!" }"#,
    )]);
    assert!(rules::panic_freedom(&w, &empty_manifest()).is_empty());
}

#[test]
fn bare_relaxed_ordering_is_caught() {
    let w = ws(&[(
        "crates/san-serve/src/planted.rs",
        "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }",
    )]);
    let v = rules::ordering_rationale(&w);
    assert_eq!(rules_of(&v), vec!["ordering-rationale"]);
}

#[test]
fn annotated_relaxed_ordering_passes() {
    let w = ws(&[(
        "crates/san-serve/src/planted.rs",
        "// ORDERING: monotonic counter, no cross-thread ordering implied.\nfn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }",
    )]);
    assert!(rules::ordering_rationale(&w).is_empty());
}

#[test]
fn uncovered_store_error_variant_is_caught() {
    let w = ws(&[
        (
            "crates/san-graph/src/store.rs",
            "pub enum StoreError { Truncated { section: &'static str }, Planted { x: u8 } }\n\
             fn c() -> StoreError { StoreError::Truncated { section: \"s\" } }\n\
             fn d() -> StoreError { StoreError::Planted { x: 1 } }",
        ),
        (
            "crates/san-graph/tests/store_corruption.rs",
            "fn m() { matches!(e, StoreError::Truncated { .. }); }",
        ),
    ]);
    let v = rules::store_error_coverage(&w);
    assert_eq!(rules_of(&v), vec!["store-error-coverage"]);
    assert!(v[0].message.contains("Planted"), "{}", v[0].message);
}

#[test]
fn dead_store_error_variant_is_caught() {
    let w = ws(&[
        (
            "crates/san-graph/src/store.rs",
            "pub enum StoreError { Dead { x: u8 } }",
        ),
        (
            "crates/san-graph/tests/store_corruption.rs",
            "fn m() { matches!(e, StoreError::Dead { .. }); }",
        ),
    ]);
    let v = rules::store_error_coverage(&w);
    assert_eq!(rules_of(&v), vec!["store-error-coverage"]);
    assert!(
        v[0].message.contains("never constructed"),
        "{}",
        v[0].message
    );
}

#[test]
fn stale_corruption_exemption_is_caught() {
    // `Io` is in the exempt set; a matrix that covers it anyway must
    // force the exemption to be removed.
    let w = ws(&[
        (
            "crates/san-graph/src/store.rs",
            "pub enum StoreError { Io(io::Error) }\n\
             fn c(e: io::Error) -> StoreError { StoreError::Io(e) }",
        ),
        (
            "crates/san-graph/tests/store_corruption.rs",
            "fn m() { matches!(e, StoreError::Io(_)); }",
        ),
    ]);
    let v = rules::store_error_coverage(&w);
    assert_eq!(rules_of(&v), vec!["store-error-coverage"]);
    assert!(v[0].message.contains("stale"), "{}", v[0].message);
}

#[test]
fn unbounded_untrusted_indexing_is_caught() {
    let w = ws(&[(
        "crates/san-graph/src/view.rs",
        "fn f(bytes: &[u8]) -> u8 { bytes[9] }",
    )]);
    let v = rules::untrusted_indexing(&w);
    assert_eq!(rules_of(&v), vec!["untrusted-indexing"]);
}

#[test]
fn bounded_indexing_and_field_access_pass() {
    let w = ws(&[(
        "crates/san-graph/src/view.rs",
        "// BOUNDS: length checked against HEADER_BYTES above.\n\
         fn f(bytes: &[u8]) -> u8 { bytes[9] }\n\
         fn g(s: &S) -> usize { s.bytes[0] as usize }",
    )]);
    assert!(rules::untrusted_indexing(&w).is_empty());
}

#[test]
fn indexing_outside_decode_paths_is_not_flagged() {
    let w = ws(&[(
        "crates/san-graph/src/csr.rs",
        "fn f(bytes: &[u8]) -> u8 { bytes[9] }",
    )]);
    assert!(rules::untrusted_indexing(&w).is_empty());
}
