//! Regenerates `audit/unsafe_inventory.toml` and
//! `audit/panic_allowlist.toml` from the current workspace state.
//!
//! ```text
//! cargo run -p san-audit --example regen_manifests
//! ```
//!
//! Use it when the audit reports a count drift you *intend*: after
//! burning down panic sites (the allowlist shrinks — good) or after a
//! reviewed change to the unsafe surface. Adding a panic site to library
//! code and regenerating instead of fixing it will show up in review as
//! a diff that grows a count.

use san_audit::{render_panic_allowlist, render_unsafe_inventory, workspace_root, Workspace};
use std::fs;

fn main() {
    let root = workspace_root();
    let ws = Workspace::load_from(&root).expect("walk workspace");
    let audit_dir = root.join("audit");
    fs::create_dir_all(&audit_dir).expect("create audit/");

    let header = |what: &str| {
        format!(
            "# {what}\n\
             # Machine-generated: `cargo run -p san-audit --example regen_manifests`.\n\
             # Checked by `cargo test -p san-audit` — exact in both directions.\n\n"
        )
    };
    fs::write(
        audit_dir.join("unsafe_inventory.toml"),
        header("Per-file `unsafe` keyword counts for the whole workspace.")
            + &render_unsafe_inventory(&ws),
    )
    .expect("write unsafe inventory");
    fs::write(
        audit_dir.join("panic_allowlist.toml"),
        header("Per-file panic-site counts (unwrap/expect/panic!/...) in library code.\n# This list only shrinks: fix sites, don't add them.")
            + &render_panic_allowlist(&ws),
    )
    .expect("write panic allowlist");
    println!("regenerated {}", audit_dir.display());
}
