//! Property lockdown for the Prometheus text-exposition encoder: any
//! registry contents — hostile metric/label names, spec-significant
//! characters in label values, saturated `u64::MAX` counters, extreme
//! histogram samples — encode to text that a line-grammar parser accepts
//! (`# HELP`/`# TYPE` once per family in that order, samples contiguous
//! under their header, histogram `le` buckets strictly increasing and
//! cumulative with `+Inf` equal to `_count`), and well-named series
//! round-trip exactly (names sanitised, label values
//! escape→unescape-identical, values digit-exact). Case counts honour
//! the `PROPTEST_CASES` env cap.

use proptest::prelude::*;
use san_graph::meter::LatencyHistogram;
use san_obs::{encode_prometheus, MetricRegistry, MetricSink, Observe};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- inputs

/// One metric emission, driven through a real registry source.
#[derive(Debug, Clone)]
enum Emit {
    Counter(u64),
    Gauge(f64),
    /// Nanosecond samples recorded into a fresh histogram.
    Histogram(Vec<u64>),
}

#[derive(Debug, Clone)]
struct Spec {
    name: String,
    labels: Vec<(String, String)>,
    emit: Emit,
}

struct Source(Vec<Spec>);

impl Observe for Source {
    fn observe(&self, sink: &mut dyn MetricSink) {
        for spec in &self.0 {
            let labels: Vec<(&str, &str)> = spec
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match &spec.emit {
                Emit::Counter(v) => sink.counter(&spec.name, "prop counter", &labels, *v),
                Emit::Gauge(v) => sink.gauge(&spec.name, "prop gauge", &labels, *v),
                Emit::Histogram(samples) => {
                    let h = LatencyHistogram::new();
                    for nanos in samples {
                        h.record(Duration::from_nanos(*nanos));
                    }
                    sink.histogram(&spec.name, "prop histogram", &labels, &h.snapshot());
                }
            }
        }
    }
}

fn registry_of(specs: Vec<Spec>, base: &[(&str, &str)]) -> MetricRegistry {
    let mut b = MetricRegistry::builder();
    b.register(base, Arc::new(Source(specs)));
    b.build()
}

/// Strings over a palette that includes every spec-significant byte.
const HOSTILE: &[char] = &[
    'a', 'Z', '9', '.', ':', '_', '-', ' ', '"', '\\', '\n', '{', '}', '=', ',', 'µ',
];

fn arb_hostile_string() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..10).prop_map(|bytes| {
        bytes
            .iter()
            .map(|b| HOSTILE[*b as usize % HOSTILE.len()])
            .collect()
    })
}

fn arb_emit() -> impl Strategy<Value = Emit> {
    prop_oneof![
        any::<u64>().prop_map(Emit::Counter),
        Just(Emit::Counter(u64::MAX)),
        any::<f64>().prop_map(Emit::Gauge),
        prop::collection::vec(any::<u64>(), 0..8).prop_map(Emit::Histogram),
    ]
}

fn arb_hostile_spec() -> impl Strategy<Value = Spec> {
    (
        arb_hostile_string(),
        prop::collection::vec((arb_hostile_string(), arb_hostile_string()), 0..3),
        arb_emit(),
    )
        .prop_map(|(name, labels, emit)| Spec { name, labels, emit })
}

// ------------------------------------------------------------- the parser

#[derive(Debug)]
struct Sample {
    name: String,
    /// Label names with **unescaped** values, in line order (minus `le`).
    labels: Vec<(String, String)>,
    /// `le` bound when present on a `_bucket` line.
    le: Option<String>,
    /// Raw value text (digit-exact for integers).
    value: String,
}

#[derive(Debug)]
struct Family {
    name: String,
    kind: String,
    samples: Vec<Sample>,
}

fn assert_metric_name(name: &str) {
    assert!(!name.is_empty(), "empty metric name");
    let mut chars = name.chars();
    let first = chars.next().unwrap();
    assert!(
        first.is_ascii_alphabetic() || first == '_' || first == ':',
        "bad metric name start: {name:?}"
    );
    assert!(
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "bad metric name: {name:?}"
    );
}

fn assert_label_name(name: &str) {
    assert!(!name.is_empty(), "empty label name");
    let mut chars = name.chars();
    let first = chars.next().unwrap();
    assert!(
        first.is_ascii_alphabetic() || first == '_',
        "bad label name start: {name:?}"
    );
    assert!(
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "bad label name: {name:?}"
    );
}

fn assert_value(value: &str) {
    let ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    assert!(ok, "bad sample value: {value:?}");
}

/// Parses `name{k="v",...}` (label values unescaped) or bare `name`.
fn parse_sample(line: &str) -> Sample {
    let (head, value) = line.rsplit_once(' ').expect("sample line has a value");
    assert_value(value);
    let Some((name, rest)) = head.split_once('{') else {
        assert_metric_name(head);
        return Sample {
            name: head.to_string(),
            labels: Vec::new(),
            le: None,
            value: value.to_string(),
        };
    };
    assert_metric_name(name);
    let inner = rest.strip_suffix('}').expect("label block closes");
    let mut labels = Vec::new();
    let mut le = None;
    let mut chars = inner.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        assert_label_name(&key);
        assert_eq!(chars.next(), Some('"'), "label value opens with a quote");
        let mut val = String::new();
        loop {
            match chars.next().expect("label value terminates") {
                '"' => break,
                '\\' => match chars.next().expect("escape has a payload") {
                    '\\' => val.push('\\'),
                    '"' => val.push('"'),
                    'n' => val.push('\n'),
                    other => panic!("invalid escape \\{other}"),
                },
                '\n' => panic!("raw newline inside a label value"),
                c => val.push(c),
            }
        }
        if key == "le" {
            assert!(le.is_none(), "two le labels");
            le = Some(val);
        } else {
            assert!(
                labels.iter().all(|(k, _)| *k != key),
                "duplicate label {key:?} in {line:?}"
            );
            labels.push((key, val));
        }
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(other) => panic!("expected ',' or end of labels, got {other:?}"),
        }
    }
    Sample {
        name: name.to_string(),
        labels,
        le,
        value: value.to_string(),
    }
}

/// Parses a whole exposition document, asserting the line grammar and
/// the header discipline as it goes.
fn parse_exposition(text: &str) -> Vec<Family> {
    let mut families: Vec<Family> = Vec::new();
    let mut pending_help: Option<String> = None;
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest.split_once(' ').unwrap_or((rest, ""));
            assert_metric_name(name);
            assert!(pending_help.is_none(), "HELP not followed by TYPE");
            assert!(
                families.iter().all(|f| f.name != name),
                "family {name} emitted twice"
            );
            pending_help = Some(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE names a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown kind {kind:?}"
            );
            assert_eq!(
                pending_help.take().as_deref(),
                Some(name),
                "HELP must immediately precede TYPE for {name}"
            );
            families.push(Family {
                name: name.to_string(),
                kind: kind.to_string(),
                samples: Vec::new(),
            });
        } else {
            assert!(pending_help.is_none(), "sample between HELP and TYPE");
            let family = families.last_mut().expect("sample before any header");
            let sample = parse_sample(line);
            if family.kind == "histogram" {
                let suffix_ok = sample.name == format!("{}_bucket", family.name)
                    || sample.name == format!("{}_sum", family.name)
                    || sample.name == format!("{}_count", family.name);
                assert!(
                    suffix_ok,
                    "histogram sample {} outside family {}",
                    sample.name, family.name
                );
            } else {
                assert_eq!(sample.name, family.name, "sample under the wrong header");
            }
            family.samples.push(sample);
        }
    }
    assert!(pending_help.is_none(), "trailing HELP without TYPE");
    families
}

/// Per-histogram-series invariants: `le` strictly increasing with
/// `+Inf` last, cumulative counts non-decreasing, `+Inf == _count`,
/// `_sum` present.
fn assert_histogram_invariants(family: &Family) {
    let mut series: Vec<String> = family
        .samples
        .iter()
        .map(|s| format!("{:?}", s.labels))
        .collect();
    series.sort();
    series.dedup();
    for key in series {
        let of_series: Vec<&Sample> = family
            .samples
            .iter()
            .filter(|s| format!("{:?}", s.labels) == key)
            .collect();
        let buckets: Vec<&&Sample> = of_series
            .iter()
            .filter(|s| s.name.ends_with("_bucket"))
            .collect();
        assert!(!buckets.is_empty(), "histogram series without buckets");
        let mut last_le: Option<u64> = None;
        let mut last_cum: u64 = 0;
        for (i, bucket) in buckets.iter().enumerate() {
            let le = bucket.le.as_deref().expect("_bucket line carries le");
            let cum: u64 = bucket.value.parse().expect("cumulative count is integral");
            assert!(cum >= last_cum, "bucket counts must be cumulative");
            last_cum = cum;
            if i == buckets.len() - 1 {
                assert_eq!(le, "+Inf", "last bucket is +Inf");
            } else {
                let le: u64 = le.parse().expect("finite le bounds are integers");
                assert!(last_le.is_none_or(|prev| le > prev), "le must increase");
                last_le = Some(le);
            }
        }
        let count = of_series
            .iter()
            .find(|s| s.name.ends_with("_count"))
            .expect("histogram has _count");
        assert_eq!(
            buckets.last().unwrap().value,
            count.value,
            "+Inf bucket equals _count"
        );
        assert!(
            of_series.iter().any(|s| s.name.ends_with("_sum")),
            "histogram has _sum"
        );
    }
}

// --------------------------------------------------------------- the props

proptest! {
    /// Whatever is registered — hostile names, label names, values,
    /// saturated counters, extreme histogram samples — the encoder
    /// neither panics nor emits a line the grammar parser rejects.
    #[test]
    fn any_contents_encode_to_parseable_exposition(
        specs in prop::collection::vec(arb_hostile_spec(), 0..8),
        base_value in arb_hostile_string(),
    ) {
        let registry = registry_of(specs, &[("layer", base_value.as_str())]);
        let text = encode_prometheus(&registry);
        let families = parse_exposition(&text);
        for family in &families {
            assert!(!family.samples.is_empty(), "headers imply samples");
            if family.kind == "histogram" {
                assert_histogram_invariants(family);
            }
        }
    }

    /// Well-named series survive the trip exactly: dotted names map to
    /// underscores, hostile label *values* unescape back to themselves,
    /// and counter values are digit-exact (u64::MAX included).
    #[test]
    fn well_named_series_round_trip_exactly(
        value in any::<u64>(),
        label_value in arb_hostile_string(),
        samples in prop::collection::vec(0u64..1_000_000, 1..8),
    ) {
        let specs = vec![
            Spec {
                name: "san.prop.counter".into(),
                labels: vec![("kind".into(), label_value.clone())],
                emit: Emit::Counter(value),
            },
            Spec {
                name: "san.prop.latency".into(),
                labels: vec![],
                emit: Emit::Histogram(samples.clone()),
            },
        ];
        let registry = registry_of(specs, &[("layer", "prop")]);
        let text = encode_prometheus(&registry);
        let families = parse_exposition(&text);

        let counter = families
            .iter()
            .find(|f| f.name == "san_prop_counter")
            .expect("counter family present");
        assert_eq!(counter.kind, "counter");
        assert_eq!(counter.samples.len(), 1);
        assert_eq!(counter.samples[0].value, value.to_string());
        assert_eq!(
            counter.samples[0].labels,
            vec![
                ("layer".to_string(), "prop".to_string()),
                ("kind".to_string(), label_value.clone()),
            ],
            "label values must unescape back to the original"
        );

        let hist = families
            .iter()
            .find(|f| f.name == "san_prop_latency")
            .expect("histogram family present");
        assert_eq!(hist.kind, "histogram");
        assert_histogram_invariants(hist);
        let count = hist
            .samples
            .iter()
            .find(|s| s.name.ends_with("_count"))
            .unwrap();
        assert_eq!(count.value, samples.len().to_string());
        let sum = hist.samples.iter().find(|s| s.name.ends_with("_sum")).unwrap();
        assert_eq!(sum.value, samples.iter().sum::<u64>().to_string());
    }
}
