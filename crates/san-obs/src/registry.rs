//! The metric registry: `Observe` sources registered once, scraped
//! lock-free forever after.

use san_graph::meter::HistogramSnapshot;
use std::sync::Arc;

/// Where an [`Observe`] implementation emits its metrics.
///
/// One call per metric series; `labels` are `(name, value)` pairs owned
/// by the caller for the duration of the call. Names are **stable dotted
/// paths** (`san.serve.cache.hits`): the dots are the cross-layer naming
/// scheme, and each exporter maps them to its own grammar (the
/// Prometheus encoder rewrites `.` to `_`).
pub trait MetricSink {
    /// A monotonically increasing counter (saturating at `u64::MAX`).
    fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64);

    /// A point-in-time value that may move both ways.
    fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64);

    /// A full latency distribution: the consistent bucket dump taken by
    /// [`LatencyHistogram::snapshot`](san_graph::meter::LatencyHistogram::snapshot).
    fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    );
}

/// A source of metrics: walks its meters and emits every series into the
/// sink. Implementations read the meters' existing lock-free getters —
/// observing never blocks recording.
///
/// This crate implements it for
/// [`VaultMetrics`](san_graph::meter::VaultMetrics) and (on Unix)
/// [`ServeMetrics`](san_serve::ServeMetrics); `san-net` implements it
/// for its `NetMetrics` next to the type.
pub trait Observe {
    /// Emits every metric series this source owns into `sink`.
    fn observe(&self, sink: &mut dyn MetricSink);
}

struct Source {
    /// Base label pairs stamped on every series this source emits.
    labels: Vec<(String, String)>,
    source: Arc<dyn Observe + Send + Sync>,
}

/// Accumulates sources, then freezes into a [`MetricRegistry`].
#[derive(Default)]
pub struct MetricRegistryBuilder {
    sources: Vec<Source>,
}

impl MetricRegistryBuilder {
    /// An empty builder.
    pub fn new() -> MetricRegistryBuilder {
        MetricRegistryBuilder::default()
    }

    /// Adds a source; `labels` are stamped onto every series it emits
    /// (before the series' own labels, which win on name collision at
    /// the exporter).
    pub fn register(
        &mut self,
        labels: &[(&str, &str)],
        source: Arc<dyn Observe + Send + Sync>,
    ) -> &mut MetricRegistryBuilder {
        self.sources.push(Source {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            source,
        });
        self
    }

    /// Freezes the source list. After this, scraping is lock-free: the
    /// registry is immutable and every read goes through the sources'
    /// own atomics.
    pub fn build(self) -> MetricRegistry {
        MetricRegistry {
            sources: self.sources.into_boxed_slice(),
        }
    }
}

/// An immutable, shareable set of metric sources.
///
/// Built once at startup, then scraped concurrently by any number of
/// threads with no lock: [`observe`](MetricRegistry::observe) walks the
/// frozen slice and each source reads its relaxed atomic meters. A
/// scrape is one consistent *pass* — each histogram is a self-consistent
/// snapshot, counters are point reads — which is the strongest guarantee
/// the underlying meters themselves offer.
pub struct MetricRegistry {
    sources: Box<[Source]>,
}

impl MetricRegistry {
    /// Starts building a registry.
    pub fn builder() -> MetricRegistryBuilder {
        MetricRegistryBuilder::new()
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Emits every series of every source into `sink`, each source's
    /// base labels merged in front of the series' own labels.
    pub fn observe(&self, sink: &mut dyn MetricSink) {
        for source in self.sources.iter() {
            if source.labels.is_empty() {
                source.source.observe(sink);
            } else {
                let mut labeled = BaseLabelSink {
                    base: &source.labels,
                    inner: sink,
                };
                source.source.observe(&mut labeled);
            }
        }
    }
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricRegistry")
            .field("sources", &self.sources.len())
            .finish_non_exhaustive()
    }
}

/// Sink adapter that prepends a source's base labels to every series.
struct BaseLabelSink<'a> {
    base: &'a [(String, String)],
    inner: &'a mut dyn MetricSink,
}

/// Base labels first, series labels after (exporters resolve name
/// collisions first-wins, so base labels dominate).
fn merged<'s>(
    base: &'s [(String, String)],
    labels: &[(&'s str, &'s str)],
) -> Vec<(&'s str, &'s str)> {
    let mut out = Vec::with_capacity(base.len() + labels.len());
    out.extend(base.iter().map(|(k, v)| (k.as_str(), v.as_str())));
    out.extend_from_slice(labels);
    out
}

impl MetricSink for BaseLabelSink<'_> {
    fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let all = merged(self.base, labels);
        self.inner.counter(name, help, &all, value);
    }

    fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let all = merged(self.base, labels);
        self.inner.gauge(name, help, &all, value);
    }

    fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    ) {
        let all = merged(self.base, labels);
        self.inner.histogram(name, help, &all, snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::meter::LatencyHistogram;

    /// One recorded emission: metric name, label pairs, rendered value.
    pub(crate) type Row = (String, Vec<(String, String)>, String);

    /// A sink that records what it saw, for asserting emission order and
    /// label merging.
    #[derive(Default)]
    pub(crate) struct RecordingSink {
        pub rows: Vec<Row>,
    }

    impl MetricSink for RecordingSink {
        fn counter(&mut self, name: &str, _help: &str, labels: &[(&str, &str)], value: u64) {
            self.rows.push((
                name.to_string(),
                labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value.to_string(),
            ));
        }

        fn gauge(&mut self, name: &str, _help: &str, labels: &[(&str, &str)], value: f64) {
            self.rows.push((
                name.to_string(),
                labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value.to_string(),
            ));
        }

        fn histogram(
            &mut self,
            name: &str,
            _help: &str,
            labels: &[(&str, &str)],
            snapshot: &HistogramSnapshot,
        ) {
            self.rows.push((
                name.to_string(),
                labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                format!("hist:{}", snapshot.count()),
            ));
        }
    }

    struct OneCounter(u64);

    impl Observe for OneCounter {
        fn observe(&self, sink: &mut dyn MetricSink) {
            sink.counter("test.one", "a test counter", &[("kind", "unit")], self.0);
        }
    }

    struct OneHistogram(LatencyHistogram);

    impl Observe for OneHistogram {
        fn observe(&self, sink: &mut dyn MetricSink) {
            sink.histogram("test.lat", "a test histogram", &[], &self.0.snapshot());
        }
    }

    #[test]
    fn registry_merges_base_labels_in_front() {
        let mut b = MetricRegistry::builder();
        b.register(&[("layer", "net")], Arc::new(OneCounter(7)));
        b.register(&[], Arc::new(OneCounter(9)));
        let reg = b.build();
        assert_eq!(reg.len(), 2);
        let mut sink = RecordingSink::default();
        reg.observe(&mut sink);
        assert_eq!(sink.rows.len(), 2);
        assert_eq!(sink.rows[0].0, "test.one");
        assert_eq!(
            sink.rows[0].1,
            vec![
                ("layer".to_string(), "net".to_string()),
                ("kind".to_string(), "unit".to_string())
            ]
        );
        assert_eq!(sink.rows[0].2, "7");
        assert_eq!(sink.rows[1].1.len(), 1, "no base labels when none set");
        assert_eq!(sink.rows[1].2, "9");
    }

    #[test]
    fn histograms_flow_through_as_snapshots() {
        let h = LatencyHistogram::new();
        h.record(std::time::Duration::from_micros(3));
        h.record(std::time::Duration::from_micros(5));
        let mut b = MetricRegistry::builder();
        b.register(&[("layer", "vault")], Arc::new(OneHistogram(h)));
        let reg = b.build();
        let mut sink = RecordingSink::default();
        reg.observe(&mut sink);
        assert_eq!(sink.rows[0].2, "hist:2");
        assert_eq!(
            sink.rows[0].1,
            vec![("layer".to_string(), "vault".to_string())]
        );
    }

    #[test]
    fn empty_registry_is_fine() {
        let reg = MetricRegistry::builder().build();
        assert!(reg.is_empty());
        let mut sink = RecordingSink::default();
        reg.observe(&mut sink);
        assert!(sink.rows.is_empty());
    }

    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<MetricRegistry>();
}
