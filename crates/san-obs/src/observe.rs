//! [`Observe`] implementations for the stack's existing meters.
//!
//! Nothing here rewrites a meter: every series is read through the
//! meters' public lock-free getters, and the names below are the stable
//! dotted contract the ROADMAP's Observability section documents.

use crate::registry::{MetricSink, Observe};
use san_graph::meter::VaultMetrics;

/// Emits one [`VaultMetrics`] under `prefix` (`{prefix}.io.*`,
/// `{prefix}.delta.*`). Shared by the vault layer (`san.vault`) and the
/// serving layer's IO view (`san.serve`), so capacity planning reads one
/// shape on both sides of the cache.
pub(crate) fn observe_vault(m: &VaultMetrics, prefix: &str, sink: &mut dyn MetricSink) {
    let name = |suffix: &str| format!("{prefix}.{suffix}");
    sink.counter(
        &name("io.bytes"),
        "Bytes moved by snapshot IO, by direction (saturating).",
        &[("dir", "read")],
        m.read_bytes(),
    );
    sink.counter(
        &name("io.bytes"),
        "Bytes moved by snapshot IO, by direction (saturating).",
        &[("dir", "write")],
        m.written_bytes(),
    );
    sink.counter(
        &name("io.ops"),
        "Completed snapshot IO operations, by direction.",
        &[("dir", "read")],
        m.reads(),
    );
    sink.counter(
        &name("io.ops"),
        "Completed snapshot IO operations, by direction.",
        &[("dir", "write")],
        m.writes(),
    );
    sink.histogram(
        &name("io.latency"),
        "Snapshot IO latency in nanoseconds, by direction.",
        &[("dir", "read")],
        &m.read_latency().snapshot(),
    );
    sink.histogram(
        &name("io.latency"),
        "Snapshot IO latency in nanoseconds, by direction.",
        &[("dir", "write")],
        &m.write_latency().snapshot(),
    );
    sink.counter(
        &name("delta.chain_loads"),
        "Reads that reconstructed a day through a delta chain.",
        &[],
        m.delta_chain_loads(),
    );
    sink.counter(
        &name("delta.links_applied"),
        "Total delta days applied across chain reconstructions.",
        &[],
        m.delta_links_applied(),
    );
    sink.gauge(
        &name("delta.max_chain_len"),
        "Longest delta chain resolved so far.",
        &[],
        m.max_chain_len() as f64,
    );
}

impl Observe for VaultMetrics {
    fn observe(&self, sink: &mut dyn MetricSink) {
        observe_vault(self, "san.vault", sink);
    }
}

#[cfg(unix)]
impl Observe for san_serve::ServeMetrics {
    fn observe(&self, sink: &mut dyn MetricSink) {
        sink.counter(
            "san.serve.cache.hits",
            "Fetches served from the resident snapshot cache.",
            &[],
            self.hits(),
        );
        sink.counter(
            "san.serve.cache.misses",
            "Fetches that led a cold map+validate.",
            &[],
            self.misses(),
        );
        sink.counter(
            "san.serve.cache.evictions",
            "Snapshots evicted to stay under the resident-byte budget.",
            &[],
            self.evictions(),
        );
        sink.counter(
            "san.serve.cache.duplicate_inserts",
            "Cache inserts that lost to an incumbent (held at zero by single-flight).",
            &[],
            self.duplicate_inserts(),
        );
        sink.counter(
            "san.serve.queries",
            "Queries driven through for_each_query.",
            &[],
            self.queries(),
        );
        sink.counter(
            "san.serve.no_snapshot",
            "Gets for days before the first persisted snapshot.",
            &[],
            self.no_snapshot(),
        );
        sink.counter(
            "san.serve.dedup.waits",
            "Fetches that blocked behind another thread's in-flight map.",
            &[],
            self.dedup_waits(),
        );
        sink.counter(
            "san.serve.dedup.hits",
            "Waits that resolved into a shared mapping (a whole map+validate saved).",
            &[],
            self.dedup_hits(),
        );
        sink.histogram(
            "san.serve.dedup.wait_latency",
            "Single-flight wait latency in nanoseconds.",
            &[],
            &self.dedup_wait_latency().snapshot(),
        );
        observe_vault(self.io(), "san.serve", sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::time::Duration;

    #[derive(Default)]
    struct Names(Vec<String>);

    impl MetricSink for Names {
        fn counter(&mut self, name: &str, _h: &str, _l: &[(&str, &str)], _v: u64) {
            self.0.push(name.to_string());
        }
        fn gauge(&mut self, name: &str, _h: &str, _l: &[(&str, &str)], _v: f64) {
            self.0.push(name.to_string());
        }
        fn histogram(
            &mut self,
            name: &str,
            _h: &str,
            _l: &[(&str, &str)],
            _s: &san_graph::meter::HistogramSnapshot,
        ) {
            self.0.push(name.to_string());
        }
    }

    #[test]
    fn vault_names_are_the_stable_dotted_contract() {
        let m = VaultMetrics::new();
        m.record_read(10, Duration::from_micros(1));
        let mut sink = Names::default();
        m.observe(&mut sink);
        let names: BTreeSet<&str> = sink.0.iter().map(|s| s.as_str()).collect();
        for expect in [
            "san.vault.io.bytes",
            "san.vault.io.ops",
            "san.vault.io.latency",
            "san.vault.delta.chain_loads",
            "san.vault.delta.links_applied",
            "san.vault.delta.max_chain_len",
        ] {
            assert!(names.contains(expect), "missing {expect} in {names:?}");
        }
    }

    #[cfg(unix)]
    #[test]
    fn serve_names_cover_cache_dedup_and_io() {
        let m = san_serve::ServeMetrics::new();
        let mut sink = Names::default();
        m.observe(&mut sink);
        let names: BTreeSet<&str> = sink.0.iter().map(|s| s.as_str()).collect();
        for expect in [
            "san.serve.cache.hits",
            "san.serve.cache.misses",
            "san.serve.cache.evictions",
            "san.serve.cache.duplicate_inserts",
            "san.serve.queries",
            "san.serve.no_snapshot",
            "san.serve.dedup.waits",
            "san.serve.dedup.hits",
            "san.serve.dedup.wait_latency",
            "san.serve.io.bytes",
            "san.serve.io.latency",
        ] {
            assert!(names.contains(expect), "missing {expect} in {names:?}");
        }
    }
}
