//! The trace timestamp source: raw TSC ticks on x86_64, calibrated to
//! nanoseconds once per process; `Instant` elsewhere.
//!
//! A traced request reads the clock seven times (begin, five stage
//! boundaries, finish). `Instant::now` is a ~40 ns vDSO call, which
//! puts naive tracing near the 5% overhead gate on a ~5 µs loopback
//! RTT; `rdtsc` is ~10 ns, and the tick→nanosecond conversion is
//! deferred to [`RequestTrace::finish`](crate::RequestTrace::finish)
//! so the per-stage hot path is one counter read and one subtraction.
//!
//! Tick deltas use saturating subtraction: the x86_64 baseline
//! guarantees `rdtsc`, and invariant-TSC hardware keeps it monotone
//! per core, but a cross-core migration may step it slightly — a
//! saturated zero attribution beats a garbage one.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Nanoseconds per tick, fixed at first calibration. On the `Instant`
/// fallback ticks *are* nanoseconds, so the factor is exactly 1.
static NANOS_PER_TICK: OnceLock<f64> = OnceLock::new();

/// Reads the raw tick counter.
#[cfg(target_arch = "x86_64")]
pub(crate) fn now_ticks() -> u64 {
    // SAFETY: `rdtsc` is part of the x86_64 baseline ISA (no CPUID
    // gate needed) and has no memory, register, or alignment
    // preconditions; it only reads the time-stamp counter.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Reads the raw tick counter (`Instant` fallback: nanoseconds since a
/// process-wide epoch, so deltas are plain subtractions).
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn now_ticks() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let nanos = EPOCH.get_or_init(Instant::now).elapsed().as_nanos();
    if nanos > u128::from(u64::MAX) {
        u64::MAX
    } else {
        nanos as u64
    }
}

/// Measures ticks against `Instant` over a short spin. Returns 1.0
/// (ticks = nanoseconds) when the counter is unusable.
fn measure_nanos_per_tick() -> f64 {
    if !cfg!(target_arch = "x86_64") {
        return 1.0;
    }
    let started = Instant::now();
    let t0 = now_ticks();
    // Long enough to swamp the two clock-read costs (~2^17 ticks even
    // at 100 MHz), short enough to vanish in server startup.
    while started.elapsed() < Duration::from_millis(2) {
        std::hint::spin_loop();
    }
    let elapsed = started.elapsed().as_nanos() as f64;
    let ticks = now_ticks().saturating_sub(t0);
    if ticks == 0 {
        return 1.0; // counter stuck or stepped backwards: fall back
    }
    elapsed / ticks as f64
}

/// Forces calibration now (a ~2 ms one-time spin on x86_64) so the
/// first traced request doesn't pay for it. [`TraceRing::new`]
/// (crate::TraceRing::new) calls this; idempotent and thread-safe.
pub(crate) fn calibrate() {
    let _ = NANOS_PER_TICK.get_or_init(measure_nanos_per_tick);
}

/// Converts a tick delta to nanoseconds. Truncates toward zero, so for
/// consecutive marks the per-stage conversions can never sum past the
/// converted total (floor is superadditive).
pub(crate) fn ticks_to_nanos(ticks: u64) -> u64 {
    let npt = *NANOS_PER_TICK.get_or_init(measure_nanos_per_tick);
    // `as` saturates on overflow and maps NaN to 0 — total conversion.
    (ticks as f64 * npt) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance_and_convert_to_plausible_nanos() {
        calibrate();
        let t0 = now_ticks();
        let started = Instant::now();
        while started.elapsed() < Duration::from_millis(5) {
            std::hint::spin_loop();
        }
        let wall = started.elapsed().as_nanos() as u64;
        let converted = ticks_to_nanos(now_ticks().saturating_sub(t0));
        // Within 2× either way of the wall clock: catches a broken
        // calibration factor without flaking on scheduler jitter.
        assert!(
            converted >= wall / 2 && converted <= wall.saturating_mul(2),
            "converted {converted} ns vs wall {wall} ns"
        );
    }

    #[test]
    fn conversion_is_monotone_and_total() {
        calibrate();
        assert_eq!(ticks_to_nanos(0), 0);
        let a = ticks_to_nanos(1_000);
        let b = ticks_to_nanos(2_000);
        assert!(a <= b, "conversion not monotone: {a} > {b}");
        // The extremes stay finite (the `as` cast saturates).
        let _ = ticks_to_nanos(u64::MAX);
    }
}
