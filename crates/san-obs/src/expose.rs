//! Hand-written Prometheus text-exposition (v0.0.4) encoder.
//!
//! No registry deps per the vendor policy: the whole format is a few
//! line shapes, so this module owns them outright.
//!
//! * Dotted metric names are sanitised to the exposition grammar
//!   (`[a-zA-Z_:][a-zA-Z0-9_:]*`): `.` and every other invalid byte
//!   become `_`, and a leading digit gains a `_` prefix. Label names
//!   sanitise the same way minus the colon.
//! * Label values are escaped per the spec (`\` → `\\`, `"` → `\"`,
//!   newline → `\n`); `# HELP` text escapes `\` and newlines.
//! * `# HELP` and `# TYPE` are emitted exactly once per family, HELP
//!   first, immediately followed by the family's samples — series of the
//!   same name from different sources are grouped under one header even
//!   when interleaved at emission.
//! * Histograms render the **full bucket dump**: one cumulative
//!   `_bucket{le="..."}` line per power-of-two bucket (inclusive upper
//!   bounds, since samples are integer nanoseconds), a `+Inf` bucket,
//!   then `_sum` and `_count`. Because a
//!   [`HistogramSnapshot`](san_graph::meter::HistogramSnapshot)'s count
//!   is the sum of its own buckets, `+Inf == _count` holds even while
//!   recorders race the scrape.
//!
//! The encoder is **total**: name collisions across metric kinds keep
//! the first kind and drop the conflicting series (a scrape must never
//! panic), duplicate label names keep the first occurrence, and a
//! histogram label literally named `le` is renamed `le_` so it cannot
//! forge bucket bounds.

use crate::registry::{MetricRegistry, MetricSink};
use san_graph::meter::{HistogramSnapshot, BUCKETS};
use std::collections::HashMap;
use std::fmt::Write;

/// Encodes one lock-free pass over the registry as Prometheus text
/// exposition (v0.0.4). Never panics, whatever was registered.
pub fn encode_prometheus(registry: &MetricRegistry) -> String {
    let mut collector = Collector::default();
    registry.observe(&mut collector);
    collector.render()
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Value {
    Counter(u64),
    Gauge(f64),
    // Boxed: a snapshot is ~340 bytes of bucket counts, and most series
    // are 8-byte counters — keep the common variant small.
    Histogram(Box<HistogramSnapshot>),
}

struct Series {
    /// Sanitised label names with raw (unescaped) values; escaping
    /// happens at render time.
    labels: Vec<(String, String)>,
    value: Value,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A [`MetricSink`] that groups emissions into families so headers come
/// out once and samples stay contiguous.
#[derive(Default)]
pub(crate) struct Collector {
    families: Vec<Family>,
    index: HashMap<String, usize>,
}

impl Collector {
    fn push(&mut self, name: &str, help: &str, labels: &[(&str, &str)], kind: Kind, value: Value) {
        let name = sanitize_metric_name(name);
        let at = match self.index.get(&name) {
            Some(&at) => {
                if self.families[at].kind != kind {
                    // Kind collision: a family cannot mix types. First
                    // registration wins; the conflicting series is
                    // dropped — the scrape stays total and parseable.
                    return;
                }
                at
            }
            None => {
                self.families.push(Family {
                    name: name.clone(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                self.index.insert(name, self.families.len() - 1);
                self.families.len() - 1
            }
        };
        let mut clean: Vec<(String, String)> = Vec::with_capacity(labels.len());
        for (k, v) in labels {
            let mut k = sanitize_label_name(k);
            if kind == Kind::Histogram && k == "le" {
                // A user label named `le` would forge bucket bounds.
                k.push('_');
            }
            if clean.iter().any(|(existing, _)| *existing == k) {
                continue; // duplicate label name: first occurrence wins
            }
            clean.push((k, v.to_string()));
        }
        self.families[at].series.push(Series {
            labels: clean,
            value,
        });
    }

    fn render(self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for series in &family.series {
                match &series.value {
                    Value::Counter(v) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            v
                        );
                    }
                    Value::Gauge(v) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            render_f64(*v)
                        );
                    }
                    Value::Histogram(snap) => {
                        let mut cumulative = 0u64;
                        for (i, count) in snap.buckets().iter().enumerate() {
                            cumulative = cumulative.saturating_add(*count);
                            if i == BUCKETS - 1 {
                                break; // last bucket is the +Inf line below
                            }
                            let le = HistogramSnapshot::bucket_upper_nanos(i).to_string();
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                family.name,
                                render_labels(&series.labels, Some(&le)),
                                cumulative
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            family.name,
                            render_labels(&series.labels, Some("+Inf")),
                            snap.count()
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            snap.sum_nanos()
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            snap.count()
                        );
                    }
                }
            }
        }
        out
    }
}

impl MetricSink for Collector {
    fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, labels, Kind::Counter, Value::Counter(value));
    }

    fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, labels, Kind::Gauge, Value::Gauge(value));
    }

    fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    ) {
        self.push(
            name,
            help,
            labels,
            Kind::Histogram,
            Value::Histogram(Box::new(*snapshot)),
        );
    }
}

/// `{a="b",c="d"}` with spec escaping, or `""` when empty; `le` (already
/// rendered) is appended last when present.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`; dots (our naming scheme)
/// and every other invalid byte become `_`.
pub(crate) fn sanitize_metric_name(name: &str) -> String {
    sanitize_name(name, true)
}

/// Label names: like metric names but without the colon.
pub(crate) fn sanitize_label_name(name: &str) -> String {
    sanitize_name(name, false)
}

fn sanitize_name(name: &str, allow_colon: bool) -> String {
    let mut out = String::with_capacity(name.len().max(1));
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic()
            || c == '_'
            || (allow_colon && c == ':')
            || (i > 0 && c.is_ascii_digit());
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Label-value escaping: backslash, double-quote, newline.
pub(crate) fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// HELP-text escaping: backslash and newline only (quotes are legal).
pub(crate) fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Go-style float rendering (`+Inf`/`-Inf`/`NaN`), total for any f64.
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Observe;
    use san_graph::meter::LatencyHistogram;
    use std::sync::Arc;
    use std::time::Duration;

    struct Sample;

    impl Observe for Sample {
        fn observe(&self, sink: &mut dyn MetricSink) {
            sink.counter(
                "san.test.requests",
                "Requests seen.",
                &[("q", "counts")],
                41,
            );
            sink.counter(
                "san.test.requests",
                "Requests seen.",
                &[("q", "degrees")],
                1,
            );
            sink.gauge("san.test.resident", "Resident bytes.", &[], 12.5);
            let h = LatencyHistogram::new();
            h.record(Duration::from_nanos(3));
            h.record(Duration::from_nanos(900));
            sink.histogram("san.test.latency", "Latency.", &[], &h.snapshot());
        }
    }

    #[test]
    fn renders_families_headers_and_samples() {
        let mut b = MetricRegistry::builder();
        b.register(&[("layer", "net")], Arc::new(Sample));
        let text = encode_prometheus(&b.build());
        assert!(text.contains("# HELP san_test_requests Requests seen.\n"));
        assert!(text.contains("# TYPE san_test_requests counter\n"));
        assert!(text.contains("san_test_requests{layer=\"net\",q=\"counts\"} 41\n"));
        assert!(text.contains("san_test_requests{layer=\"net\",q=\"degrees\"} 1\n"));
        assert!(text.contains("# TYPE san_test_resident gauge\n"));
        assert!(text.contains("san_test_resident{layer=\"net\"} 12.5\n"));
        assert!(text.contains("# TYPE san_test_latency histogram\n"));
        // Bucket 1 ([2,4) ns) holds the 3 ns sample cumulatively with
        // bucket 0 (empty): le="3" is 2^2 - 1.
        assert!(text.contains("san_test_latency_bucket{layer=\"net\",le=\"3\"} 1\n"));
        assert!(text.contains("san_test_latency_bucket{layer=\"net\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("san_test_latency_sum{layer=\"net\"} 903\n"));
        assert!(text.contains("san_test_latency_count{layer=\"net\"} 2\n"));
    }

    #[test]
    fn headers_come_once_even_when_sources_interleave() {
        let mut b = MetricRegistry::builder();
        b.register(&[("i", "0")], Arc::new(Sample));
        b.register(&[("i", "1")], Arc::new(Sample));
        let text = encode_prometheus(&b.build());
        assert_eq!(text.matches("# TYPE san_test_requests counter").count(), 1);
        assert_eq!(text.matches("# HELP san_test_requests ").count(), 1);
        // Both sources' series are present under the single header.
        assert!(text.contains("san_test_requests{i=\"0\",q=\"counts\"} 41"));
        assert!(text.contains("san_test_requests{i=\"1\",q=\"counts\"} 41"));
    }

    #[test]
    fn sanitizes_names_and_escapes_values() {
        assert_eq!(
            sanitize_metric_name("san.vault.io.bytes"),
            "san_vault_io_bytes"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("a:b"), "a:b");
        assert_eq!(sanitize_label_name("a:b"), "a_b");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_help("x\\y\nz"), "x\\\\y\\nz");
    }

    #[test]
    fn kind_collisions_drop_later_series_not_the_process() {
        struct Clash;
        impl Observe for Clash {
            fn observe(&self, sink: &mut dyn MetricSink) {
                sink.counter("san.same", "first", &[], 1);
                sink.gauge("san.same", "second", &[], 2.0);
            }
        }
        let mut b = MetricRegistry::builder();
        b.register(&[], Arc::new(Clash));
        let text = encode_prometheus(&b.build());
        assert!(text.contains("# TYPE san_same counter"));
        assert!(!text.contains("# TYPE san_same gauge"));
        assert!(text.contains("san_same 1\n"));
        assert!(!text.contains("san_same 2\n"));
    }

    #[test]
    fn saturated_counters_and_weird_floats_encode() {
        struct Extremes;
        impl Observe for Extremes {
            fn observe(&self, sink: &mut dyn MetricSink) {
                sink.counter("san.max", "pinned", &[], u64::MAX);
                sink.gauge("san.nan", "nan", &[], f64::NAN);
                sink.gauge("san.inf", "inf", &[], f64::INFINITY);
                sink.gauge("san.ninf", "ninf", &[], f64::NEG_INFINITY);
            }
        }
        let mut b = MetricRegistry::builder();
        b.register(&[], Arc::new(Extremes));
        let text = encode_prometheus(&b.build());
        assert!(text.contains(&format!("san_max {}\n", u64::MAX)));
        assert!(text.contains("san_nan NaN\n"));
        assert!(text.contains("san_inf +Inf\n"));
        assert!(text.contains("san_ninf -Inf\n"));
    }
}
