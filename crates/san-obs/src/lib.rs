//! # san-obs — observability for the SAN serving stack
//!
//! The stack's meters ([`VaultMetrics`](san_graph::meter::VaultMetrics),
//! [`ServeMetrics`](san_serve::ServeMetrics), `NetMetrics` in `san-net`)
//! are lock-free in-process structs readable only by Rust code holding
//! the object. This crate makes them observable from outside the
//! process, in three layers:
//!
//! * [`registry`] — the [`Observe`] trait (`fn observe(&self, sink:
//!   &mut dyn MetricSink)`) plus an immutable-after-build
//!   [`MetricRegistry`]: sources are registered once at startup (each
//!   with base label pairs), then any number of threads scrape
//!   concurrently with **no lock anywhere** — a scrape walks the frozen
//!   source list and reads the same relaxed atomics the meters already
//!   expose. Metric names are stable dotted paths (`san.vault.io.bytes`,
//!   `san.serve.cache.hits`, `san.net.requests`); histograms export
//!   their full power-of-two bucket dump via
//!   [`HistogramSnapshot`](san_graph::meter::HistogramSnapshot).
//! * [`expose`] — a hand-written Prometheus text-exposition (v0.0.4)
//!   encoder, dependency-free per the vendor policy: dotted names are
//!   sanitised to the exposition grammar, label values escaped,
//!   `# HELP`/`# TYPE` emitted once per family, histograms rendered as
//!   cumulative `_bucket{le=...}` series with `+Inf` equal to `_count`
//!   **by construction** (a snapshot's count is the sum of its own
//!   buckets). The encoder is total: any registry contents — hostile
//!   names, saturated `u64::MAX` counters — encode without panicking.
//! * [`trace`] — per-request tracing: a [`RequestTrace`] carries a
//!   request id through decode → admission → fetch → execute → encode
//!   with per-stage nanosecond attribution (stages are measured as
//!   consecutive wall-clock marks, so they sum to the end-to-end time),
//!   and finished traces feed a fixed-size lock-free [`TraceRing`] — the
//!   slow-query log. The ring's per-slot publish protocol is a seqlock
//!   built on `loom-lite` atomics and model-checked in `model_tests`
//!   (readers never observe a torn entry; contended writers drop, never
//!   block).
//!
//! The serving front-end (`san-net`) wires all three together: its
//! admin listener serves `GET /metrics` and `GET /slowlog`, and the SANW
//! `Stats` query returns the same exposition document in-protocol.
//!
//! Everything here is additive: no meter was rewritten, the `Observe`
//! impls read the existing public getters.

mod clock;
pub mod expose;
pub mod registry;
pub mod trace;

mod observe;

#[cfg(test)]
mod model_tests;

pub use expose::encode_prometheus;
pub use registry::{MetricRegistry, MetricRegistryBuilder, MetricSink, Observe};
pub use trace::{render_slowlog, FetchClass, RequestTrace, Stage, TraceEntry, TraceRing, STAGES};

pub use san_graph::meter::HistogramSnapshot;
