//! `loom-lite` model checks of the trace ring's seqlock publish
//! protocol: the exact production [`SeqCell`](crate::trace) code
//! (dual-mode `loom_lite::sync` atomics) explored across **every**
//! 2–3-thread schedule.
//!
//! The cell is generic over its word count; [`TraceRing`] instantiates
//! it at 8 words, these models at 2 — same compiled claim/store/publish
//! and validate/copy/revalidate paths, a state space small enough to
//! enumerate exhaustively. Each scenario asserts, in every explored
//! interleaving:
//!
//! * **no torn read** — a reader that validates its copy holds exactly
//!   one writer's words, never a mix;
//! * **drops, never blocks** — a writer that loses the claim returns
//!   `false` and terminates (a blocking protocol would deadlock some
//!   schedule and be reported);
//! * **no lost publish** — once all writers join, the cell holds one
//!   complete entry and the success/drop accounting matches what the
//!   writers returned.

// Redundant with the gated `mod` declaration in lib.rs, but makes this
// file self-describing as test-only code (san-audit classifies files
// with a test-gating inner attribute as test code).
#![cfg(test)]

use crate::trace::SeqCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Two writers race for one cell: at least one always publishes, an
/// overlapping claim drops (never blocks), and the settled cell holds
/// one complete pair whatever the schedule.
#[test]
fn contended_writers_drop_but_never_block_or_tear() {
    // Plain std atomics: cross-iteration statistics, not modelled state.
    let saw_both = Arc::new(AtomicU64::new(0));
    let saw_drop = Arc::new(AtomicU64::new(0));
    let (both_stat, drop_stat) = (Arc::clone(&saw_both), Arc::clone(&saw_drop));
    let report = loom_lite::model(move || {
        let cell = Arc::new(SeqCell::<2>::new());
        let writers: Vec<_> = [10u64, 20]
            .into_iter()
            .map(|base| {
                let cell = Arc::clone(&cell);
                loom_lite::thread::spawn(move || cell.try_write(&[base, base + 1]))
            })
            .collect();
        let published: Vec<bool> = writers.into_iter().map(|w| w.join().unwrap()).collect();
        let wins = published.iter().filter(|ok| **ok).count();
        assert!(wins >= 1, "claim CAS is obstruction-free: someone wins");
        if wins == 2 {
            both_stat.fetch_add(1, Ordering::Relaxed);
        } else {
            drop_stat.fetch_add(1, Ordering::Relaxed);
        }
        // Post-join, the cell always holds one complete publish.
        let settled = cell.read().expect("a publish must be visible after join");
        assert_eq!(settled[1], settled[0] + 1, "torn settle: {settled:?}");
        assert!(settled[0] == 10 || settled[0] == 20);
    });
    assert!(
        report.iterations > 1,
        "explored {} schedules",
        report.iterations
    );
    // Both outcome classes are reachable: serialized writers both
    // publish; overlapping writers drop one.
    assert!(
        saw_both.load(Ordering::Relaxed) > 0,
        "some schedule serializes"
    );
    assert!(
        saw_drop.load(Ordering::Relaxed) > 0,
        "some schedule drops a writer"
    );
}

/// One writer races one reader on an empty cell: the reader sees
/// nothing (empty or mid-publish) or the complete pair — never a torn
/// mix, and never a "valid" read of the never-written state.
#[test]
fn reader_never_observes_a_torn_publish() {
    let saw_none = Arc::new(AtomicU64::new(0));
    let saw_value = Arc::new(AtomicU64::new(0));
    let (none_stat, value_stat) = (Arc::clone(&saw_none), Arc::clone(&saw_value));
    let report = loom_lite::model(move || {
        let cell = Arc::new(SeqCell::<2>::new());
        let writer = {
            let cell = Arc::clone(&cell);
            loom_lite::thread::spawn(move || cell.try_write(&[10, 11]))
        };
        let reader = {
            let cell = Arc::clone(&cell);
            let none_stat = Arc::clone(&none_stat);
            let value_stat = Arc::clone(&value_stat);
            loom_lite::thread::spawn(move || match cell.read() {
                None => {
                    none_stat.fetch_add(1, Ordering::Relaxed);
                }
                Some(words) => {
                    assert_eq!(words, [10, 11], "torn or phantom read: {words:?}");
                    value_stat.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        assert!(writer.join().unwrap(), "sole writer always claims the cell");
        reader.join().unwrap();
        assert_eq!(cell.read(), Some([10, 11]), "publish settles");
    });
    assert!(
        report.iterations > 1,
        "explored {} schedules",
        report.iterations
    );
    // Both outcome classes are reachable.
    assert!(
        saw_none.load(Ordering::Relaxed) > 0,
        "some schedule reads early"
    );
    assert!(
        saw_value.load(Ordering::Relaxed) > 0,
        "some schedule reads the publish"
    );
}

/// A writer republishes over a seeded cell while a reader races: the
/// reader gets the old pair or the new pair, and a copy that straddles
/// the publish is discarded by the sequence re-check, never returned.
#[test]
fn republish_over_live_reader_is_old_new_or_discarded() {
    let saw_old = Arc::new(AtomicU64::new(0));
    let saw_new = Arc::new(AtomicU64::new(0));
    let saw_discard = Arc::new(AtomicU64::new(0));
    let (old_stat, new_stat, discard_stat) = (
        Arc::clone(&saw_old),
        Arc::clone(&saw_new),
        Arc::clone(&saw_discard),
    );
    let report = loom_lite::model(move || {
        let cell = Arc::new(SeqCell::<2>::new());
        assert!(cell.try_write(&[10, 11]), "uncontended seed publishes");
        let writer = {
            let cell = Arc::clone(&cell);
            loom_lite::thread::spawn(move || cell.try_write(&[20, 21]))
        };
        let reader = {
            let cell = Arc::clone(&cell);
            let old_stat = Arc::clone(&old_stat);
            let new_stat = Arc::clone(&new_stat);
            let discard_stat = Arc::clone(&discard_stat);
            loom_lite::thread::spawn(move || match cell.read() {
                Some([10, 11]) => {
                    old_stat.fetch_add(1, Ordering::Relaxed);
                }
                Some([20, 21]) => {
                    new_stat.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    discard_stat.fetch_add(1, Ordering::Relaxed);
                }
                Some(words) => panic!("torn read {words:?}"),
            })
        };
        assert!(writer.join().unwrap(), "sole writer always claims the cell");
        reader.join().unwrap();
        assert_eq!(cell.read(), Some([20, 21]), "republish settles");
    });
    assert!(
        report.iterations > 1,
        "explored {} schedules",
        report.iterations
    );
    assert!(
        saw_old.load(Ordering::Relaxed) > 0,
        "some schedule reads the seed"
    );
    assert!(
        saw_new.load(Ordering::Relaxed) > 0,
        "some schedule reads the republish"
    );
    assert!(
        saw_discard.load(Ordering::Relaxed) > 0,
        "some schedule straddles the publish and discards"
    );
}
