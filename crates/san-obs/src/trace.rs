//! Per-request tracing: stage-attributed timings and the lock-free
//! slow-query ring.
//!
//! A [`RequestTrace`] rides one request through the serving pipeline.
//! Stages are measured as **consecutive wall-clock marks** — each
//! [`stage`](RequestTrace::stage) call attributes the time since the
//! previous mark — so the per-stage nanoseconds sum to the end-to-end
//! time minus only the instants between `finish`'s last mark and its
//! total read (a few clock reads).
//!
//! Finished traces land in a [`TraceRing`]: a fixed-size ring of
//! seqlock-published slots. Writers claim a slot by ticket
//! (`fetch_add`), flip its sequence odd, store the entry's words, and
//! flip the sequence back even; a writer that finds the slot mid-write
//! **drops its entry** (telemetry may drop, serving never blocks) and
//! counts the drop. Readers retry-free validate the sequence before and
//! after copying the words, so a torn entry is never observed — the
//! protocol is model-checked under `loom-lite` in `model_tests`.
//!
//! Everything is built on `loom_lite::sync::atomic` so the *same
//! compiled code* is what the model checker explores; outside a model
//! run those types delegate straight to `std`.

use crate::clock;
use loom_lite::sync::atomic::{AtomicU64, Ordering};

/// Pipeline stages a request passes through, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Reading + validating the request frame off the socket.
    Decode,
    /// Admission control: shutdown/inflight/resident-byte gates plus
    /// day resolution.
    Admission,
    /// Snapshot fetch through the cache (hit / cold map / dedup wait).
    Fetch,
    /// Query evaluation against the mapped view.
    Execute,
    /// Response encode + write back to the socket.
    Encode,
}

/// Number of [`Stage`]s.
pub const STAGES: usize = 5;

impl Stage {
    /// Stable index of this stage in [`TraceEntry::stage_nanos`].
    pub fn index(self) -> usize {
        match self {
            Stage::Decode => 0,
            Stage::Admission => 1,
            Stage::Fetch => 2,
            Stage::Execute => 3,
            Stage::Encode => 4,
        }
    }

    /// Lower-case stage name, as printed in the slow log.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::Fetch => "fetch",
            Stage::Execute => "execute",
            Stage::Encode => "encode",
        }
    }

    /// All stages in pipeline order.
    pub fn all() -> [Stage; STAGES] {
        [
            Stage::Decode,
            Stage::Admission,
            Stage::Fetch,
            Stage::Execute,
            Stage::Encode,
        ]
    }
}

/// How the fetch stage resolved, mirrored from
/// `san_serve::FetchKind` without depending on its (Unix-only) type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchClass {
    /// The request never reached the fetch stage (or needed no
    /// snapshot, e.g. a stats query).
    #[default]
    None,
    /// Served from the resident cache.
    Hit,
    /// This request led the cold map+validate.
    ColdMap,
    /// Blocked behind another request's in-flight map.
    DedupWait,
}

impl FetchClass {
    /// Lower-case class name, as printed in the slow log.
    pub fn name(self) -> &'static str {
        match self {
            FetchClass::None => "none",
            FetchClass::Hit => "hit",
            FetchClass::ColdMap => "cold_map",
            FetchClass::DedupWait => "dedup_wait",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            FetchClass::None => 0,
            FetchClass::Hit => 1,
            FetchClass::ColdMap => 2,
            FetchClass::DedupWait => 3,
        }
    }

    fn from_u8(v: u8) -> FetchClass {
        match v {
            1 => FetchClass::Hit,
            2 => FetchClass::ColdMap,
            3 => FetchClass::DedupWait,
            _ => FetchClass::None,
        }
    }
}

/// A live trace being carried through the pipeline by one worker.
///
/// Marks are raw [`clock`](crate::clock) ticks (TSC on x86_64); the
/// tick→nanosecond conversion is deferred to [`finish`]
/// (RequestTrace::finish) so the per-stage hot path is one counter
/// read and one saturating subtraction — that is what keeps tracing
/// under the 5% overhead gate on a loopback round trip.
#[derive(Debug)]
pub struct RequestTrace {
    request_id: u64,
    day: u32,
    query_id: u16,
    fetch: FetchClass,
    started_ticks: u64,
    mark_ticks: u64,
    stage_ticks: [u64; STAGES],
}

impl RequestTrace {
    /// Starts the clock. Call at the moment the first request byte is
    /// known to be waiting (not while idling between frames).
    pub fn begin(request_id: u64) -> RequestTrace {
        let now = clock::now_ticks();
        RequestTrace {
            request_id,
            day: 0,
            query_id: 0,
            fetch: FetchClass::None,
            started_ticks: now,
            mark_ticks: now,
            stage_ticks: [0; STAGES],
        }
    }

    /// Records what the decoded frame asked for (unknown at `begin`).
    pub fn decoded(&mut self, day: u32, query_id: u16) {
        self.day = day;
        self.query_id = query_id;
    }

    /// Classifies the fetch stage once the cache has answered.
    pub fn fetched(&mut self, class: FetchClass) {
        self.fetch = class;
    }

    /// Attributes the time since the previous mark to `stage` (additive:
    /// a stage revisited accumulates).
    pub fn stage(&mut self, stage: Stage) {
        let now = clock::now_ticks();
        let spent = now.saturating_sub(self.mark_ticks);
        self.stage_ticks[stage.index()] = self.stage_ticks[stage.index()].saturating_add(spent);
        self.mark_ticks = now;
    }

    /// Seals the trace, converting every tick count to nanoseconds.
    /// `outcome` is 0 for a served request, otherwise the wire error
    /// code sent back. The floor-converting tick→ns map keeps the
    /// per-stage sum ≤ `total_nanos` whenever the tick sums held it.
    pub fn finish(self, outcome: u8) -> TraceEntry {
        let total_ticks = clock::now_ticks().saturating_sub(self.started_ticks);
        let mut stage_nanos = [0u64; STAGES];
        for (nanos, ticks) in stage_nanos.iter_mut().zip(self.stage_ticks) {
            *nanos = clock::ticks_to_nanos(ticks);
        }
        TraceEntry {
            request_id: self.request_id,
            day: self.day,
            query_id: self.query_id,
            outcome,
            fetch: self.fetch,
            stage_nanos,
            total_nanos: clock::ticks_to_nanos(total_ticks),
        }
    }
}

/// Number of `u64` words one [`TraceEntry`] packs into (the seqlock
/// slot width).
const WORDS: usize = 8;

/// One finished request trace: identity, outcome, and per-stage
/// nanosecond attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Server-assigned request id (monotonic per server).
    pub request_id: u64,
    /// Day the request asked for (0 when it never decoded).
    pub day: u32,
    /// Wire query id.
    pub query_id: u16,
    /// 0 for served, else the wire error code returned.
    pub outcome: u8,
    /// How the fetch stage resolved.
    pub fetch: FetchClass,
    /// Nanoseconds attributed to each [`Stage`] (indexed by
    /// [`Stage::index`]).
    pub stage_nanos: [u64; STAGES],
    /// End-to-end nanoseconds from `begin` to `finish`.
    pub total_nanos: u64,
}

impl TraceEntry {
    /// Nanoseconds attributed to `stage`.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage.index()]
    }

    /// Sum of all per-stage attributions (≤ `total_nanos` up to clock
    /// granularity; the acceptance gate holds it within 10%).
    pub fn stages_total_nanos(&self) -> u64 {
        self.stage_nanos
            .iter()
            .fold(0u64, |acc, n| acc.saturating_add(*n))
    }

    fn to_words(self) -> [u64; WORDS] {
        let meta = u64::from(self.day)
            | (u64::from(self.query_id) << 32)
            | (u64::from(self.outcome) << 48)
            | (u64::from(self.fetch.to_u8()) << 56);
        [
            self.request_id,
            meta,
            self.stage_nanos[0],
            self.stage_nanos[1],
            self.stage_nanos[2],
            self.stage_nanos[3],
            self.stage_nanos[4],
            self.total_nanos,
        ]
    }

    fn from_words(words: &[u64; WORDS]) -> TraceEntry {
        TraceEntry {
            request_id: words[0],
            day: (words[1] & 0xFFFF_FFFF) as u32,
            query_id: ((words[1] >> 32) & 0xFFFF) as u16,
            outcome: ((words[1] >> 48) & 0xFF) as u8,
            fetch: FetchClass::from_u8(((words[1] >> 56) & 0xFF) as u8),
            stage_nanos: [words[2], words[3], words[4], words[5], words[6]],
            total_nanos: words[7],
        }
    }
}

/// A seqlock-published cell of `W` words.
///
/// Publish protocol (model-checked in `model_tests`):
/// * writer: CAS the sequence from even to odd (claim; a failed CAS
///   means another writer is mid-publish — back off, don't spin), store
///   the words, bump the sequence back to even (publish);
/// * reader: load the sequence (odd or zero ⇒ nothing readable), copy
///   the words, re-load the sequence — a changed sequence means the copy
///   may be torn and is discarded.
///
/// Sequence 0 is "never written"; every publish leaves it at a larger
/// even value, so validated copies are never mistaken for the empty
/// state.
pub(crate) struct SeqCell<const W: usize> {
    seq: AtomicU64,
    words: [AtomicU64; W],
}

impl<const W: usize> SeqCell<W> {
    pub(crate) fn new() -> SeqCell<W> {
        SeqCell {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Attempts one publish; `false` means another writer held the cell
    /// and this entry was dropped (the cell never blocks).
    pub(crate) fn try_write(&self, words: &[u64; W]) -> bool {
        // Claim: even → odd. SeqCst keeps the claim, the word stores and
        // the publish in one total order the reader's validation relies
        // on (loom-lite explores exactly this order).
        if self
            .seq
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| {
                if s % 2 == 0 {
                    Some(s + 1)
                } else {
                    None
                }
            })
            .is_err()
        {
            return false;
        }
        for (slot, word) in self.words.iter().zip(words) {
            slot.store(*word, Ordering::Release);
        }
        // Publish: odd → even (this writer owns the cell, so a plain
        // add cannot race another writer's claim).
        self.seq.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// Copies the words if a consistent published value is present.
    pub(crate) fn read(&self) -> Option<[u64; W]> {
        let before = self.seq.load(Ordering::SeqCst);
        if before == 0 || before % 2 == 1 {
            return None;
        }
        let words = std::array::from_fn(|i| self.words[i].load(Ordering::Acquire));
        let after = self.seq.load(Ordering::SeqCst);
        (before == after).then_some(words)
    }
}

/// The slow-query log: a fixed-size lock-free ring of the most recent
/// finished traces, dumped sorted by total latency (slowest first).
///
/// Writers never block and never wait on readers: a slot contended by
/// another writer drops the entry and counts it in
/// [`dropped`](TraceRing::dropped). Readers ([`snapshot`](TraceRing::snapshot))
/// skip slots mid-publish.
pub struct TraceRing {
    slots: Box<[SeqCell<WORDS>]>,
    next_ticket: AtomicU64,
    next_id: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding the `capacity` most recent traces (clamped ≥ 1).
    /// Also calibrates the trace clock (a one-time ~2 ms spin on
    /// x86_64) so the first traced request doesn't pay for it.
    pub fn new(capacity: usize) -> TraceRing {
        clock::calibrate();
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| SeqCell::new()).collect(),
            next_ticket: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Hands out the next request id (monotonic from 0).
    pub fn next_request_id(&self) -> u64 {
        // ORDERING: Relaxed — the RMW atomicity of fetch_add alone makes
        // ids unique; nothing is published through the counter.
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one finished trace. Lock-free: under slot contention the
    /// entry is dropped (and counted), never queued or blocked on.
    pub fn record(&self, entry: &TraceEntry) {
        // ORDERING: Relaxed ticket — uniqueness comes from RMW
        // atomicity; slot publication order is carried by the SeqCell
        // sequence, not by the ticket.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        if slot.try_write(&entry.to_words()) {
            // ORDERING: Relaxed — statistics counters, see module docs.
            self.recorded.fetch_add(1, Ordering::Relaxed);
        } else {
            // ORDERING: Relaxed — statistics counters, see module docs.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Traces successfully published so far.
    pub fn recorded(&self) -> u64 {
        // ORDERING: Relaxed load of one monotonic statistic.
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces dropped to slot contention so far.
    pub fn dropped(&self) -> u64 {
        // ORDERING: Relaxed load of one monotonic statistic.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies every readable slot, sorted slowest-first (ties broken by
    /// most recent request id first).
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        let mut out: Vec<TraceEntry> = self
            .slots
            .iter()
            .filter_map(|slot| slot.read().map(|w| TraceEntry::from_words(&w)))
            .collect();
        out.sort_unstable_by(|a, b| {
            b.total_nanos
                .cmp(&a.total_nanos)
                .then(b.request_id.cmp(&a.request_id))
        });
        out
    }

    /// The `n` slowest recent traces.
    pub fn slowest(&self, n: usize) -> Vec<TraceEntry> {
        let mut all = self.snapshot();
        all.truncate(n);
        all
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

/// Renders the ring's slowest `n` traces as the plain-text slow-query
/// log served at `GET /slowlog`: one header line, then one line per
/// trace, slowest first.
pub fn render_slowlog(ring: &TraceRing, n: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "slowlog capacity={} recorded={} dropped={}",
        ring.capacity(),
        ring.recorded(),
        ring.dropped()
    );
    for e in ring.slowest(n) {
        let _ = write!(
            out,
            "id={} day={} query={} outcome={} fetch={} total_ns={}",
            e.request_id,
            e.day,
            e.query_id,
            e.outcome,
            e.fetch.name(),
            e.total_nanos
        );
        for stage in Stage::all() {
            let _ = write!(out, " {}_ns={}", stage.name(), e.stage_nanos(stage));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn entry(id: u64, total: u64) -> TraceEntry {
        TraceEntry {
            request_id: id,
            day: 42,
            query_id: 3,
            outcome: 0,
            fetch: FetchClass::Hit,
            stage_nanos: [1, 2, 3, 4, 5],
            total_nanos: total,
        }
    }

    #[test]
    fn words_round_trip_every_field() {
        let e = TraceEntry {
            request_id: u64::MAX,
            day: (1 << 20) - 1,
            query_id: 7,
            outcome: 6,
            fetch: FetchClass::DedupWait,
            stage_nanos: [u64::MAX, 0, 1, 2, 3],
            total_nanos: u64::MAX,
        };
        assert_eq!(TraceEntry::from_words(&e.to_words()), e);
        let zero = TraceEntry {
            request_id: 0,
            day: 0,
            query_id: 0,
            outcome: 0,
            fetch: FetchClass::None,
            stage_nanos: [0; STAGES],
            total_nanos: 0,
        };
        assert_eq!(TraceEntry::from_words(&zero.to_words()), zero);
    }

    #[test]
    fn trace_stages_sum_close_to_total() {
        let ring = TraceRing::new(4);
        let mut t = RequestTrace::begin(ring.next_request_id());
        t.decoded(9, 0);
        t.stage(Stage::Decode);
        std::thread::sleep(Duration::from_millis(2));
        t.stage(Stage::Admission);
        t.fetched(FetchClass::ColdMap);
        t.stage(Stage::Fetch);
        std::thread::sleep(Duration::from_millis(1));
        t.stage(Stage::Execute);
        t.stage(Stage::Encode);
        let e = t.finish(0);
        assert!(
            e.total_nanos >= 3_000_000,
            "slept 3ms, got {}",
            e.total_nanos
        );
        let sum = e.stages_total_nanos();
        assert!(sum <= e.total_nanos);
        // Stage marks are consecutive: the gap is only finish()'s last
        // clock read, far under 10% of a 3 ms request.
        assert!(
            e.total_nanos - sum < e.total_nanos / 10,
            "sum {sum} vs total {}",
            e.total_nanos
        );
        assert!(e.stage_nanos(Stage::Admission) >= 2_000_000);
        assert!(e.stage_nanos(Stage::Execute) >= 1_000_000);
        assert_eq!(e.fetch, FetchClass::ColdMap);
    }

    #[test]
    fn ring_keeps_most_recent_and_sorts_slowest_first() {
        let ring = TraceRing::new(3);
        for (id, total) in [(0u64, 50u64), (1, 10), (2, 90), (3, 30)] {
            ring.record(&entry(id, total));
        }
        // Capacity 3: entry 0 was overwritten by entry 3.
        assert_eq!(ring.recorded(), 4);
        assert_eq!(ring.dropped(), 0);
        let snap = ring.snapshot();
        let ids: Vec<u64> = snap.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, vec![2, 3, 1], "slowest first: {snap:?}");
        let top = ring.slowest(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].request_id, 2);
    }

    #[test]
    fn empty_ring_renders_header_only() {
        let ring = TraceRing::new(8);
        let log = render_slowlog(&ring, 10);
        assert_eq!(log, "slowlog capacity=8 recorded=0 dropped=0\n");
    }

    #[test]
    fn slowlog_lines_carry_every_stage() {
        let ring = TraceRing::new(2);
        ring.record(&entry(7, 1234));
        let log = render_slowlog(&ring, 10);
        assert!(log.contains("id=7 day=42 query=3 outcome=0 fetch=hit total_ns=1234"));
        for name in [
            "decode_ns=1",
            "admission_ns=2",
            "fetch_ns=3",
            "execute_ns=4",
            "encode_ns=5",
        ] {
            assert!(log.contains(name), "{log}");
        }
    }

    #[test]
    fn request_ids_are_unique_across_threads() {
        let ring = TraceRing::new(1);
        let ids = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mine: Vec<u64> = (0..100).map(|_| ring.next_request_id()).collect();
                    ids.lock().unwrap().extend(mine);
                });
            }
        });
        let mut ids = ids.into_inner().unwrap();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(&entry(1, 5));
        assert_eq!(ring.snapshot().len(), 1);
    }

    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = assert_send_sync::<TraceRing>();
}
