//! The three-phase Google+ timeline (§2.2) as arrival and reciprocity
//! schedules.
//!
//! * **Phase I** (days 1–20): invitation flood right after launch — high,
//!   front-loaded arrival rate (TechCrunch's ~10 M users by day 14).
//! * **Phase II** (days 21–75): stabilised invitation-only growth.
//! * **Phase III** (days 76–98): public release — arrivals spike again
//!   ("40 million users had joined by mid October").
//!
//! Reciprocity behaves oppositely: early users treat Google+ like a
//! symmetric friendship network, late users like a publisher-subscriber
//! feed, so the per-day reciprocation probability decays — slowly through
//! Phases I–II, faster in Phase III (Fig. 4a).

use san_metrics::evolution::PhaseBounds;

/// Per-day arrival counts for a `days`-day run.
///
/// `base` is the Phase II daily rate; Phase I ramps down from ~4× base
/// (launch spike) to base, Phase III jumps to ~4× base. Panics if
/// `days == 0`.
pub fn arrivals_schedule(days: u32, base: u32) -> Vec<u32> {
    assert!(days > 0, "need at least one day");
    let b = PhaseBounds::PAPER;
    let base = base.max(1);
    (1..=days)
        .map(|t| {
            if t <= b.phase1_end {
                // Linear decay from 4x to 1x across Phase I.
                let span = b.phase1_end.max(1) as f64;
                let frac = (t - 1) as f64 / span;
                ((4.0 - 3.0 * frac) * base as f64).round() as u32
            } else if t <= b.phase2_end {
                base
            } else {
                4 * base
            }
        })
        .collect()
}

/// Per-day reciprocation probability: fluctuating-high in Phase I, gently
/// decaying in Phase II, decaying faster in Phase III (Fig. 4a's shape).
pub fn reciprocity_schedule(days: u32) -> Vec<f64> {
    assert!(days > 0, "need at least one day");
    let b = PhaseBounds::PAPER;
    (1..=days)
        .map(|t| {
            if t <= b.phase1_end {
                // Mild fluctuation around 0.46.
                0.46 + 0.015 * ((t as f64) * 1.3).sin()
            } else if t <= b.phase2_end {
                // 0.46 -> 0.42 across Phase II.
                let span = (b.phase2_end - b.phase1_end) as f64;
                let frac = (t - b.phase1_end) as f64 / span;
                0.46 - 0.04 * frac
            } else {
                // 0.42 -> 0.30 across Phase III (steeper).
                let span = (days.saturating_sub(b.phase2_end)).max(1) as f64;
                let frac = (t - b.phase2_end) as f64 / span;
                0.42 - 0.12 * frac
            }
        })
        .map(|p| p.clamp(0.0, 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_have_three_regimes() {
        let sched = arrivals_schedule(98, 100);
        assert_eq!(sched.len(), 98);
        // Launch spike.
        assert!(sched[0] >= 350, "day1={}", sched[0]);
        // Phase II flat at base.
        assert!(sched[30..70].iter().all(|&a| a == 100));
        // Phase III spike.
        assert!(sched[80] >= 350);
        // Phase I decays towards base.
        assert!(sched[0] > sched[10]);
        assert!(sched[19] <= sched[10]);
    }

    #[test]
    fn arrivals_minimum_base() {
        let sched = arrivals_schedule(10, 0);
        assert!(sched.iter().all(|&a| a >= 1));
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn arrivals_zero_days_panics() {
        arrivals_schedule(0, 10);
    }

    #[test]
    fn reciprocity_decays_across_phases() {
        let sched = reciprocity_schedule(98);
        assert_eq!(sched.len(), 98);
        // All valid probabilities.
        assert!(sched.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Phase means strictly decreasing.
        let mean = |range: std::ops::Range<usize>| {
            let v = &sched[range];
            v.iter().sum::<f64>() / v.len() as f64
        };
        let m1 = mean(0..20);
        let m2 = mean(20..75);
        let m3 = mean(75..98);
        assert!(m1 > m2, "m1={m1} m2={m2}");
        assert!(m2 > m3, "m2={m2} m3={m3}");
        // Phase III decays faster per day than Phase II.
        let slope2 = (sched[74] - sched[20]) / 54.0;
        let slope3 = (sched[97] - sched[75]) / 22.0;
        assert!(slope3 < slope2, "slope3={slope3} slope2={slope2}");
    }

    #[test]
    fn short_runs_still_work() {
        let sched = reciprocity_schedule(5);
        assert_eq!(sched.len(), 5);
        let arr = arrivals_schedule(5, 10);
        assert_eq!(arr.len(), 5);
    }
}
