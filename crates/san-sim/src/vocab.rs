//! Attribute vocabulary: human-readable names for generated attribute
//! nodes.
//!
//! The generative engine mints anonymous attribute nodes with a type; the
//! Fig. 13b / Fig. 14 analyses talk about concrete values — *Google*,
//! *Computer Science*, *San Francisco*… Preferential attachment makes the
//! earliest attributes the most popular, which matches the paper's
//! speculation that "many of the early adopters likely consist of Google
//! employees and users in the IT/CS industry": labelling attributes **by
//! popularity rank within their type** therefore assigns "Google" to the
//! biggest employer node, whose members are disproportionately early
//! adopters with organically higher degrees — exactly the Fig. 14 effect.

use san_graph::{AttrId, AttrType, SanRead};

/// The named values used by the paper's Fig. 14 columns, most popular
/// first.
pub const EMPLOYERS: [&str; 6] = ["Google", "Microsoft", "IBM", "Infosys", "Intel", "Oracle"];

/// Major names, most popular first (CS leads among early adopters).
pub const MAJORS: [&str; 6] = [
    "Computer Science",
    "Economics",
    "Finance",
    "Political Science",
    "Physics",
    "Biology",
];

/// School names.
pub const SCHOOLS: [&str; 6] = [
    "UC Berkeley",
    "Stanford",
    "MIT",
    "Tsinghua",
    "CMU",
    "Stony Brook",
];

/// City names.
pub const CITIES: [&str; 6] = [
    "San Francisco",
    "New York",
    "London",
    "Bangalore",
    "Beijing",
    "Mountain View",
];

/// Labels every attribute node: within each type, nodes are ranked by
/// social degree (descending, ties by id) and assigned the named values in
/// order; overflow nodes get `"<type>-<rank>"`. Returns one label per
/// attribute node, indexable by [`AttrId::index`].
pub fn label_attributes(san: &impl SanRead) -> Vec<String> {
    let mut labels = vec![String::new(); san.num_attr_nodes()];
    for ty in [
        AttrType::School,
        AttrType::Major,
        AttrType::Employer,
        AttrType::City,
        AttrType::Other,
    ] {
        let named: &[&str] = match ty {
            AttrType::Employer => &EMPLOYERS,
            AttrType::Major => &MAJORS,
            AttrType::School => &SCHOOLS,
            AttrType::City => &CITIES,
            AttrType::Other => &[],
        };
        let mut nodes: Vec<AttrId> = san
            .attr_nodes()
            .filter(|&a| san.attr_type(a) == ty)
            .collect();
        nodes.sort_by_key(|&a| (std::cmp::Reverse(san.social_degree_of_attr(a)), a));
        for (rank, a) in nodes.into_iter().enumerate() {
            labels[a.index()] = if rank < named.len() {
                named[rank].to_string()
            } else {
                format!("{}-{}", ty.as_str(), rank + 1)
            };
        }
    }
    labels
}

/// Finds the attribute node carrying a given label (linear scan; intended
/// for experiment set-up, not hot paths).
pub fn find_label(labels: &[String], name: &str) -> Option<AttrId> {
    labels
        .iter()
        .position(|l| l == name)
        .map(|i| AttrId(i as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::{San, SocialId};

    fn san_with_two_employers() -> San {
        let mut san = San::new();
        let users: Vec<SocialId> = (0..5).map(|_| san.add_social_node()).collect();
        let big = san.add_attr_node(AttrType::Employer);
        let small = san.add_attr_node(AttrType::Employer);
        let city = san.add_attr_node(AttrType::City);
        for &u in &users[..4] {
            san.add_attr_link(u, big);
        }
        san.add_attr_link(users[4], small);
        san.add_attr_link(users[0], city);
        san
    }

    #[test]
    fn biggest_employer_gets_google() {
        let san = san_with_two_employers();
        let labels = label_attributes(&san);
        assert_eq!(labels[0], "Google");
        assert_eq!(labels[1], "Microsoft");
        assert_eq!(labels[2], "San Francisco");
    }

    #[test]
    fn overflow_gets_generic_names() {
        let mut san = San::new();
        let u = san.add_social_node();
        for _ in 0..8 {
            let a = san.add_attr_node(AttrType::Major);
            san.add_attr_link(u, a);
        }
        let labels = label_attributes(&san);
        assert_eq!(labels.len(), 8);
        assert!(labels.contains(&"Computer Science".to_string()));
        assert!(labels.iter().any(|l| l.starts_with("major-")));
    }

    #[test]
    fn all_nodes_labelled() {
        let san = san_with_two_employers();
        let labels = label_attributes(&san);
        assert!(labels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn find_label_roundtrip() {
        let san = san_with_two_employers();
        let labels = label_attributes(&san);
        let google = find_label(&labels, "Google").unwrap();
        assert_eq!(san.social_degree_of_attr(google), 4);
        assert_eq!(find_label(&labels, "Narnia Inc"), None);
    }

    #[test]
    fn empty_san() {
        let labels = label_attributes(&San::new());
        assert!(labels.is_empty());
    }
}
