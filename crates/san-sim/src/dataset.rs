//! The synthetic Google+ dataset: ground truth + daily crawls.
//!
//! [`GooglePlus::generate`] grows a ground-truth SAN with the paper's own
//! generative engine under the three-phase schedule, assigns public/private
//! visibility, and labels the attribute vocabulary. [`GooglePlusData`] then
//! exposes the §2.2 crawl: a stateful BFS crawler re-run against each daily
//! snapshot, seeded at a well-connected early user, observing only what a
//! real crawler could see.

use crate::phases::{arrivals_schedule, reciprocity_schedule};
use crate::vocab::label_attributes;
use san_core::model::{SanModel, SanModelParams};
use san_graph::crawler::{CrawlSnapshot, Crawler};
use san_graph::degree::nodes_by_total_degree;
use san_graph::store::{SnapshotVault, StoreError, StreamingVaultWriter};
use san_graph::{San, SanEvent, SanTimeline, SocialId};
use san_stats::SplitRng;

/// Simulator parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GooglePlusParams {
    /// Simulated days (the paper observes 98 days across three phases).
    pub days: u32,
    /// Phase II arrivals per day — the scale knob. ~60 gives ≈10 k users,
    /// ~600 gives ≈100 k.
    pub base_arrivals: u32,
    /// Fraction of users with public profiles (crawl visibility).
    pub public_prob: f64,
    /// Fraction of users declaring any attributes (paper measures 22 %).
    pub attr_declare_prob: f64,
    /// The generative engine settings (three-phase arrival/reciprocity
    /// schedules are overlaid on top of this base).
    pub engine: SanModelParams,
}

impl GooglePlusParams {
    /// Paper-shaped defaults at a given scale.
    pub fn at_scale(base_arrivals: u32) -> Self {
        let days = 98;
        GooglePlusParams {
            days,
            base_arrivals,
            public_prob: 0.85,
            attr_declare_prob: 0.22,
            engine: SanModelParams::paper_default(days, base_arrivals),
        }
    }
}

/// The dataset generator.
#[derive(Debug, Clone)]
pub struct GooglePlus {
    params: GooglePlusParams,
}

/// A generated synthetic Google+ with everything experiments need.
#[derive(Debug, Clone)]
pub struct GooglePlusData {
    /// Ground-truth growth log.
    pub timeline: SanTimeline,
    /// Ground truth at the final day.
    pub truth: San,
    /// Per-user public/private visibility.
    pub public: Vec<bool>,
    /// Human-readable attribute labels (by attribute id).
    pub labels: Vec<String>,
    /// Crawl seed (a well-connected early adopter).
    pub crawl_seed: SocialId,
}

impl GooglePlus {
    /// Creates the generator; validates engine parameters.
    pub fn new(mut params: GooglePlusParams) -> Result<Self, san_core::ModelError> {
        params.engine.days = params.days;
        params.engine.arrivals_per_day = arrivals_schedule(params.days, params.base_arrivals);
        params.engine.reciprocate_schedule = Some(reciprocity_schedule(params.days));
        params.engine.attr_declare_prob = params.attr_declare_prob;
        params.engine.reciprocate_attr_boost = 1.6;
        params.engine.reciprocate_delay_mean = 15.0;
        // Google+ users close triangles through shared attributes far more
        // often than the model's conservative default: the paper measures
        // 18 % focal closures. fc = 3 reproduces that share given the 22 %
        // declaration rate.
        params.engine.closing = san_core::closing::ClosingModel::RrSan { fc: 3.0 };
        params.engine.validate()?;
        Ok(GooglePlus { params })
    }

    /// Convenience: paper-shaped dataset at `base_arrivals` scale.
    pub fn at_scale(base_arrivals: u32) -> Self {
        GooglePlus::new(GooglePlusParams::at_scale(base_arrivals))
            .expect("default parameters are valid")
    }

    /// The resolved parameters.
    pub fn params(&self) -> &GooglePlusParams {
        &self.params
    }

    /// Generates the dataset. Deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> GooglePlusData {
        let model = SanModel::new(self.params.engine.clone()).expect("validated in new");
        let (timeline, truth) = model.generate(seed);
        let mut rng = SplitRng::new(seed ^ 0x600D_F00D);
        let public: Vec<bool> = (0..truth.num_social_nodes())
            .map(|_| rng.chance(self.params.public_prob))
            .collect();
        let labels = label_attributes(&truth);
        // Seed the crawler at the highest-degree public early adopter.
        let crawl_seed = nodes_by_total_degree(&truth)
            .into_iter()
            .find(|u| public[u.index()])
            .unwrap_or(SocialId(0));
        GooglePlusData {
            timeline,
            truth,
            public,
            labels,
            crawl_seed,
        }
    }

    /// Streaming form of [`generate`](GooglePlus::generate): grows the
    /// exact same ground truth (bit-identical for the same `seed`) but
    /// hands each day's events to `sink(day, events)` as they complete
    /// instead of accumulating a [`SanTimeline`] — peak memory is the live
    /// network plus one day of events, which is what makes million-node
    /// synthesis feasible. No visibility/label/crawl bookkeeping is done;
    /// scale runs that need those should sample them from the returned
    /// ground truth.
    pub fn generate_streaming<F: FnMut(u32, &[SanEvent])>(&self, seed: u64, sink: F) -> San {
        let model = SanModel::new(self.params.engine.clone()).expect("validated in new");
        model.generate_with(seed, sink)
    }

    /// Synthesizes the ground truth straight into `vault` in bounded
    /// memory: each day's events stream into a
    /// [`StreamingVaultWriter`] persisting every `step`-th day (plus the
    /// final day) as SANCSRBF v2, with at most `full_every - 1`
    /// consecutive delta days between full days. At no point are more
    /// than two snapshots resident. Returns the final ground-truth
    /// network and the persisted days.
    ///
    /// # Panics
    /// Panics if `step == 0` or `full_every` is outside
    /// `1..=`[`MAX_DELTA_CHAIN`](san_graph::store::MAX_DELTA_CHAIN).
    pub fn synthesize_into_vault(
        &self,
        seed: u64,
        vault: &mut SnapshotVault,
        step: u32,
        full_every: u32,
    ) -> Result<(San, Vec<u32>), StoreError> {
        let mut writer = StreamingVaultWriter::new(vault, step, full_every);
        let mut failed = None;
        let truth = self.generate_streaming(seed, |_, events| {
            if failed.is_none() {
                if let Err(e) = writer.apply_day(events) {
                    failed = Some(e);
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        let saved = writer.finish()?;
        Ok((truth, saved))
    }
}

impl GooglePlusData {
    /// Runs the daily crawl over every day of the timeline, invoking
    /// `visit(day, &crawl)` with the crawler's view of that day. The
    /// crawler state persists across days exactly as in §2.2 (each day
    /// expands from the previous snapshot).
    ///
    /// Costs one incremental ground-truth replay plus one BFS per day; no
    /// snapshots are retained.
    pub fn crawl_daily<F: FnMut(u32, &CrawlSnapshot)>(&self, mut visit: F) {
        let mut crawler = Crawler::new(vec![self.crawl_seed]);
        self.timeline.for_each_day(|day, truth_at_day| {
            // The seed may not exist in the earliest days; skip until born.
            if self.crawl_seed.index() >= truth_at_day.num_social_nodes() {
                return;
            }
            let public = &self.public[..truth_at_day.num_social_nodes()];
            let snap = crawler.crawl(truth_at_day, public);
            visit(day, &snap);
        });
    }

    /// Crawls only the final day (cheapest way to get "the last snapshot",
    /// which most single-snapshot analyses use).
    pub fn crawl_final(&self) -> CrawlSnapshot {
        let mut crawler = Crawler::new(vec![self.crawl_seed]);
        crawler.crawl(&self.truth, &self.public)
    }

    /// Crawls the network as of a specific day (fresh crawler).
    pub fn crawl_at_day(&self, day: u32) -> CrawlSnapshot {
        let truth = self.timeline.snapshot_at(day);
        let mut crawler = Crawler::new(vec![self.crawl_seed]);
        let public = &self.public[..truth.num_social_nodes()];
        crawler.crawl(&truth, public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_metrics::reciprocity::global_reciprocity;

    fn tiny_data() -> GooglePlusData {
        GooglePlus::at_scale(6).generate(1)
    }

    #[test]
    fn generates_three_phase_growth() {
        let data = tiny_data();
        let counts = data.timeline.day_counts();
        assert_eq!(counts.len(), 99);
        // Arrival spikes: day 1 and day 80 add ~4x the Phase II rate.
        let added = |d: usize| counts[d].social_nodes - counts[d - 1].social_nodes;
        assert!(
            added(1) >= 3 * added(40),
            "d1={} d40={}",
            added(1),
            added(40)
        );
        assert!(added(80) >= 3 * added(40));
        data.truth.check_consistency().unwrap();
    }

    #[test]
    fn declaration_rate_near_configured() {
        let data = GooglePlus::at_scale(20).generate(2);
        let rate = san_graph::subsample::attribute_declaration_rate(&data.truth);
        assert!((rate - 0.22).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn reciprocity_declines_over_time() {
        let data = GooglePlus::at_scale(15).generate(3);
        let early = data.timeline.snapshot_at(40);
        let late = data.timeline.snapshot_at(98);
        let r_early = global_reciprocity(&early);
        let r_late = global_reciprocity(&late);
        assert!(
            r_late < r_early,
            "reciprocity should decay: early={r_early} late={r_late}"
        );
        // In the plausible Google+ band.
        assert!((0.2..=0.6).contains(&r_late), "r_late={r_late}");
    }

    #[test]
    fn crawl_covers_most_of_truth() {
        let data = tiny_data();
        let snap = data.crawl_final();
        // The paper argues >= 70% coverage; with 85% public profiles and a
        // WCC-spanning crawler we should beat that comfortably.
        assert!(snap.node_coverage > 0.7, "coverage={}", snap.node_coverage);
        snap.san.check_consistency().unwrap();
    }

    #[test]
    fn daily_crawls_are_monotone() {
        let data = tiny_data();
        let mut last_nodes = 0usize;
        let mut days_seen = 0;
        data.crawl_daily(|_, snap| {
            assert!(snap.san.num_social_nodes() >= last_nodes);
            last_nodes = snap.san.num_social_nodes();
            days_seen += 1;
        });
        assert!(days_seen >= 98, "days_seen={days_seen}");
        assert!(last_nodes > 0);
    }

    #[test]
    fn crawl_at_day_matches_fresh_crawl() {
        let data = tiny_data();
        let snap = data.crawl_at_day(50);
        assert!(snap.san.num_social_nodes() > 0);
        assert!(snap.san.num_social_nodes() <= data.truth.num_social_nodes());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = GooglePlus::at_scale(8).generate(7);
        let b = GooglePlus::at_scale(8).generate(7);
        assert_eq!(a.truth.num_social_links(), b.truth.num_social_links());
        assert_eq!(a.public, b.public);
        assert_eq!(a.crawl_seed, b.crawl_seed);
    }

    #[test]
    fn streaming_generation_matches_batch() {
        let gp = GooglePlus::at_scale(5);
        let data = gp.generate(4);
        let mut events = Vec::new();
        let truth = gp.generate_streaming(4, |day, evs| {
            assert!(evs.iter().all(|e| e.day() == day));
            events.extend_from_slice(evs);
        });
        assert_eq!(events, data.timeline.events());
        assert_eq!(truth.num_social_nodes(), data.truth.num_social_nodes());
        assert_eq!(truth.num_social_links(), data.truth.num_social_links());
        assert_eq!(truth.num_attr_links(), data.truth.num_attr_links());
    }

    #[test]
    fn synthesize_into_vault_matches_timeline_snapshots() {
        let dir = std::env::temp_dir().join(format!("san-sim-vault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut vault = SnapshotVault::create(&dir).unwrap();

        let gp = GooglePlus::at_scale(4);
        let (truth, saved) = gp.synthesize_into_vault(9, &mut vault, 10, 4).unwrap();
        let data = gp.generate(9);
        assert_eq!(truth.num_social_links(), data.truth.num_social_links());

        // Persisted grid: every 10th day plus the forced final day 98.
        let expect: Vec<u32> = (0..=98).filter(|d| d % 10 == 0).chain([98]).collect();
        assert_eq!(saved, expect);
        // Each persisted day reloads to the replayed snapshot, across the
        // full/delta mix.
        for &day in &[0u32, 30, 50, 98] {
            let loaded = vault.load_day(day).unwrap();
            assert_eq!(*loaded, data.timeline.snapshot_csr(day), "day {day}");
        }
        assert_eq!(*vault.load_day(98).unwrap(), data.truth.freeze());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn labels_cover_attributes() {
        let data = tiny_data();
        assert_eq!(data.labels.len(), data.truth.num_attr_nodes());
        assert!(data.labels.contains(&"Google".to_string()));
    }
}
