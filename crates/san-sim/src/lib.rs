//! # san-sim — a synthetic Google+ and its crawler
//!
//! The paper's measurements run on a proprietary crawl of Google+ (79 daily
//! snapshots, ~30 M users, §2.2). That dataset cannot be redistributed, so
//! this crate provides the workspace's **data substitution**: a synthetic
//! Google+ whose ground truth is grown by the paper's own generative engine
//! (`san-core`) under the measured three-phase regime, plus the §2.2 BFS
//! crawler that observes it through public/private visibility.
//!
//! What the simulator reproduces (and where it is calibrated):
//!
//! * **Three phases** (Fig. 2–3): arrival-rate schedule with explosive
//!   Phase I (days 1–20), steady invitation-only Phase II (21–75), and the
//!   public-release spike of Phase III (76–98) — [`phases`].
//! * **Declining hybrid reciprocity** (Fig. 4a): a per-day reciprocation
//!   schedule that decays as the population shifts from friend-style to
//!   publisher-subscriber behaviour — [`phases::reciprocity_schedule`].
//! * **22 % attribute declaration** (§2.2) and the four profile attribute
//!   types with named popular values ("Google", "Computer Science", …) —
//!   [`vocab`].
//! * **Crawl semantics**: daily snapshot-expanding BFS with both outgoing
//!   and incoming lists visible on public profiles — [`dataset`].
//!
//! Every experiment binary consumes [`dataset::GooglePlusData`], so the
//! exact same measurement code would run on a real crawl parsed into a
//! [`san_graph::San`].

pub mod dataset;
pub mod phases;
pub mod vocab;

pub use dataset::{GooglePlus, GooglePlusData, GooglePlusParams};
pub use phases::{arrivals_schedule, reciprocity_schedule};
pub use vocab::label_attributes;
