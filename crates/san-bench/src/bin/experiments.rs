//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <id|all> [--scale N] [--seed N]
//! ```
//!
//! `id` ∈ {fig2..fig19, closure, theory, alg2, coverage}. `--scale` is the
//! Phase II daily arrival rate of the synthetic Google+ (default 40 ⇒
//! ≈10 k users); `--seed` fixes all randomness (default 42).

use san_bench::{exp, Ctx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale: u32 = 40;
    let mut seed: u64 = 42;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing/invalid --scale value"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing/invalid --seed value"));
            }
            "--help" | "-h" => usage(""),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage("no experiment id given");
    }
    if ids.iter().any(|i| i == "all") {
        ids = exp::ALL.iter().map(|s| s.to_string()).collect();
    }
    // Validate before paying for dataset generation.
    for id in &ids {
        if !exp::ALL.contains(&id.as_str()) {
            usage(&format!("unknown experiment '{id}'"));
        }
    }
    eprintln!("generating synthetic Google+ (scale={scale}, seed={seed})…");
    let ctx = Ctx::new(scale, seed);
    eprintln!(
        "dataset ready: {} users, {} social links, {} attributes, {} attribute links (crawled: {} users)",
        ctx.data.truth.num_social_nodes(),
        ctx.data.truth.num_social_links(),
        ctx.data.truth.num_attr_nodes(),
        ctx.data.truth.num_attr_links(),
        ctx.crawl.san.num_social_nodes(),
    );
    for id in &ids {
        assert!(exp::run(id, &ctx), "validated above");
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: experiments <id|all> [--scale N] [--seed N]");
    eprintln!("experiments: {}", exp::ALL.join(" "));
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
