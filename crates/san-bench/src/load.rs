//! Closed- and open-loop load generators for the `san-net` TCP
//! front-end.
//!
//! Both replay the same deterministic **mixed query stream** (every
//! protocol query kind, weighted toward the cheap point lookups a real
//! serving tier sees most) against a server address and record
//! per-request latency in one shared
//! [`LatencyHistogram`](san_graph::meter::LatencyHistogram), so
//! p50/p99/p999 come from the same instrument the server itself uses.
//!
//! * [`closed_loop`] — each client sends its next request the moment
//!   the previous response lands. Measures the server's best-case
//!   round-trip under a fixed concurrency level; throughput floats.
//! * [`open_loop`] — each client fires on a fixed schedule regardless
//!   of response times, and latency is measured **from the scheduled
//!   send instant**, so queueing delay counts (the classic guard
//!   against coordinated omission). Measures behaviour at a fixed
//!   offered rate; latency floats.
//!
//! The generators are transport-level clients only — they run on any
//! platform and in the benches drive a Unix-hosted
//! `san_net::NetServer` over loopback.

use san_graph::meter::LatencyHistogram;
use san_net::{ErrorCode, NetClient, Query, Response};
use san_stats::SplitRng;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a mixed stream queries: node/day ranges plus the master seed.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// Master seed; client `i` derives its own stream from `seed + i`.
    pub seed: u64,
    /// Days are drawn uniformly from `0..=max_day`.
    pub max_day: u32,
    /// Node ids are drawn uniformly from `0..max_node` (keep at or
    /// below the *earliest* served snapshot's node count to stay on
    /// the `Ok` path; overshoot deliberately to exercise typed
    /// `NodeOutOfRange` responses).
    pub max_node: u32,
}

/// Draws the next `(day, query)` of the mixed stream.
///
/// The mix is weighted toward point lookups (degrees, has-link,
/// neighbor pages) with a steady trickle of whole-graph metrics
/// (reciprocity, clustering), echoing the paper's serving workload:
/// many profile-shaped reads, occasional analytics.
pub fn next_query(rng: &mut SplitRng, spec: &StreamSpec) -> (u32, Query) {
    let day = rng.below(u64::from(spec.max_day) + 1) as u32;
    let node = |rng: &mut SplitRng| rng.below(u64::from(spec.max_node.max(1))) as u32;
    let query = match rng.below(16) {
        0..=3 => Query::Degrees { u: node(rng) },
        4..=7 => Query::HasLink {
            src: node(rng),
            dst: node(rng),
        },
        8..=10 => Query::OutNeighbors {
            u: node(rng),
            offset: 0,
            limit: 64,
        },
        11..=12 => Query::CommonNeighbors {
            u: node(rng),
            v: node(rng),
        },
        13 => Query::Counts,
        14 => Query::Reciprocity,
        _ => Query::LocalClustering { u: node(rng) },
    };
    (day, query)
}

/// Aggregated outcome of one load run across every client.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests sent (and answered — transport errors end a client).
    pub sent: u64,
    /// `Ok` responses.
    pub served: u64,
    /// Typed `Busy` responses (admission control shed the request).
    pub busy: u64,
    /// Other typed error responses (`NoSnapshot`, `NodeOutOfRange`, …).
    pub rejected: u64,
    /// Transport-level failures (connection reset, truncated frame).
    pub transport_errors: u64,
    /// Per-request latency across all clients.
    pub latency: Arc<LatencyHistogram>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Median request latency in nanoseconds.
    pub fn p50_nanos(&self) -> u64 {
        self.latency.quantile_nanos(0.5)
    }

    /// 99th-percentile request latency in nanoseconds.
    pub fn p99_nanos(&self) -> u64 {
        self.latency.quantile_nanos(0.99)
    }

    /// 99.9th-percentile request latency in nanoseconds.
    pub fn p999_nanos(&self) -> u64 {
        self.latency.quantile_nanos(0.999)
    }

    /// Achieved throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.sent as f64 / secs
        } else {
            0.0
        }
    }
}

/// Per-run shared tallies (the histogram plus outcome counters).
#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    served: AtomicU64,
    busy: AtomicU64,
    rejected: AtomicU64,
    transport_errors: AtomicU64,
}

// ORDERING: every Tally counter is Relaxed — independent monotonic
// meters summed after all client threads have joined; the joins give
// the happens-before edge that makes the final loads exact.

fn classify(tally: &Tally, response: &Response) {
    // ORDERING: Relaxed — independent monotonic meters; exactness comes
    // from RMW atomicity, visibility from the thread joins in
    // `run_clients` before anyone reads them.
    match response {
        Response::Ok { .. } => tally.served.fetch_add(1, Ordering::Relaxed),
        Response::Err {
            code: ErrorCode::Busy,
            ..
        } => tally.busy.fetch_add(1, Ordering::Relaxed),
        Response::Err { .. } => tally.rejected.fetch_add(1, Ordering::Relaxed),
    };
}

fn finish(tally: &Tally, latency: Arc<LatencyHistogram>, elapsed: Duration) -> LoadReport {
    // ORDERING: Relaxed loads — called only after every client thread
    // joined (scope exit), so these reads are already exact.
    LoadReport {
        sent: tally.sent.load(Ordering::Relaxed),
        served: tally.served.load(Ordering::Relaxed),
        busy: tally.busy.load(Ordering::Relaxed),
        rejected: tally.rejected.load(Ordering::Relaxed),
        transport_errors: tally.transport_errors.load(Ordering::Relaxed),
        latency,
        elapsed,
    }
}

/// Runs `clients` closed-loop clients, each sending
/// `requests_per_client` mixed queries back-to-back (next request only
/// after the previous response). Latency is the plain round-trip.
pub fn closed_loop(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: u64,
    spec: StreamSpec,
) -> LoadReport {
    run_clients(addr, clients, spec, move |client, rng, spec, record| {
        for _ in 0..requests_per_client {
            let (day, query) = next_query(rng, spec);
            let start = Instant::now();
            match client.query(day, query) {
                Ok(response) => record(&response, start.elapsed()),
                Err(_) => return Err(()),
            }
        }
        Ok(())
    })
}

/// Runs `clients` open-loop clients, each firing `requests_per_client`
/// mixed queries on a fixed cadence of one request per `interval`,
/// **regardless of how long responses take**. Latency for request `k`
/// is measured from its scheduled instant `start + k × interval`, so
/// time spent queued behind a slow server is charged to the request —
/// the coordinated-omission-free number.
///
/// One connection per client, so a late response delays later sends;
/// with the schedule-anchored clock that delay shows up as latency,
/// which is exactly the point.
pub fn open_loop(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: u64,
    interval: Duration,
    spec: StreamSpec,
) -> LoadReport {
    run_clients(addr, clients, spec, move |client, rng, spec, record| {
        let epoch = Instant::now();
        for k in 0..requests_per_client {
            let due = epoch + interval * (k as u32);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            let (day, query) = next_query(rng, spec);
            match client.query(day, query) {
                Ok(response) => record(&response, due.elapsed()),
                Err(_) => return Err(()),
            }
        }
        Ok(())
    })
}

/// Shared client-fleet scaffolding: one thread + connection + derived
/// rng per client, one histogram and tally across all of them.
fn run_clients<F>(addr: SocketAddr, clients: usize, spec: StreamSpec, body: F) -> LoadReport
where
    F: Fn(
            &mut NetClient,
            &mut SplitRng,
            &StreamSpec,
            &mut dyn FnMut(&Response, Duration),
        ) -> Result<(), ()>
        + Send
        + Sync,
{
    let latency = Arc::new(LatencyHistogram::new());
    let tally = Tally::default();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..clients {
            let latency = Arc::clone(&latency);
            let tally = &tally;
            let body = &body;
            scope.spawn(move || {
                // ORDERING: Relaxed fetch-adds throughout — independent
                // monotonic meters, read only after the scope joins every
                // client thread (see `classify`/`finish`).
                let Ok(mut client) = NetClient::connect(addr) else {
                    tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let _ = client.set_timeout(Some(Duration::from_secs(30)));
                let mut rng = SplitRng::new(spec.seed.wrapping_add(i as u64));
                let mut record = |response: &Response, elapsed: Duration| {
                    tally.sent.fetch_add(1, Ordering::Relaxed);
                    latency.record(elapsed);
                    classify(tally, response);
                };
                if body(&mut client, &mut rng, &spec, &mut record).is_err() {
                    // ORDERING: Relaxed — same meter discipline as above.
                    tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    finish(&tally, latency, started.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_stream_is_deterministic_and_covers_every_query_kind() {
        let spec = StreamSpec {
            seed: 42,
            max_day: 30,
            max_node: 1000,
        };
        let draw = |seed: u64| {
            let mut rng = SplitRng::new(seed);
            (0..256)
                .map(|_| next_query(&mut rng, &spec))
                .collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same stream");
        assert_ne!(a, draw(8), "different seed, different stream");

        let mut kinds = [false; 7];
        for (day, query) in &a {
            assert!(*day <= spec.max_day);
            let k = match query {
                Query::Counts => 0,
                Query::Degrees { .. } => 1,
                Query::OutNeighbors { limit, .. } => {
                    assert!(*limit <= san_net::proto::MAX_NEIGHBOR_PAGE);
                    2
                }
                Query::HasLink { .. } => 3,
                Query::CommonNeighbors { .. } => 4,
                Query::Reciprocity => 5,
                Query::LocalClustering { .. } => 6,
                // The load mix is graph traffic only; scrapes are driven
                // by the observability harness, never drawn here.
                Query::Stats => panic!("load stream drew a stats query"),
            };
            kinds[k] = true;
        }
        assert_eq!(kinds, [true; 7], "256 draws cover all 7 query kinds");
    }

    #[test]
    fn report_quantiles_and_throughput_read_back() {
        let latency = Arc::new(LatencyHistogram::new());
        for micros in [5u64, 10, 20, 40, 5000] {
            latency.record(Duration::from_micros(micros));
        }
        let report = LoadReport {
            sent: 5,
            served: 4,
            busy: 1,
            rejected: 0,
            transport_errors: 0,
            latency,
            elapsed: Duration::from_secs(1),
        };
        assert!(report.p50_nanos() > 0);
        assert!(report.p99_nanos() >= report.p50_nanos());
        assert!(report.p999_nanos() >= report.p99_nanos());
        assert!((report.throughput_rps() - 5.0).abs() < 1e-9);
    }
}
