//! # san-bench — the experiment harness
//!
//! One target per table/figure of the paper. Run them with
//!
//! ```text
//! cargo run -p san-bench --release --bin experiments -- <experiment> [--scale N] [--seed N]
//! cargo run -p san-bench --release --bin experiments -- all
//! ```
//!
//! where `<experiment>` is one of `fig2 … fig19`, `closure`, `theory`,
//! `alg2`, `coverage` (see [`exp`] for the full index, and `DESIGN.md` for
//! the experiment ↔ module mapping). Criterion micro-benchmarks live under
//! `benches/`.
//!
//! All experiments share one synthetic Google+ dataset ([`Ctx`]), generated
//! at a configurable scale (`--scale` multiplies the Phase II arrival
//! rate). Absolute numbers therefore differ from the 30 M-user paper
//! dataset; the *shapes* — which distribution family wins, which model
//! matches, where the curves bend — are the reproduction targets, and
//! `EXPERIMENTS.md` records both sides.

pub mod exp;
pub mod load;

use san_graph::crawler::CrawlSnapshot;
use san_sim::{GooglePlus, GooglePlusData};

/// Shared experiment context: one generated dataset + its final crawl.
pub struct Ctx {
    /// The synthetic Google+ (ground truth + visibility + labels).
    pub data: GooglePlusData,
    /// The final-day crawled snapshot (what "the last snapshot" means in
    /// the paper's single-snapshot analyses).
    pub crawl: CrawlSnapshot,
    /// Phase II arrivals per day used for generation.
    pub scale: u32,
    /// Master seed.
    pub seed: u64,
}

impl Ctx {
    /// Generates the shared dataset. `scale` is the Phase II daily arrival
    /// rate (default 40 ⇒ ≈10 k users over 98 days).
    pub fn new(scale: u32, seed: u64) -> Ctx {
        let data = GooglePlus::at_scale(scale).generate(seed);
        let crawl = data.crawl_final();
        Ctx {
            data,
            crawl,
            scale,
            seed,
        }
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints a named `(x, y)` series as aligned rows.
pub fn print_series(x_label: &str, y_label: &str, rows: &[(f64, f64)]) {
    println!("  {x_label:>12}  {y_label:>14}");
    for (x, y) in rows {
        println!("  {x:>12.3}  {y:>14.6}");
    }
}

/// Prints a series with integer x (days, degrees).
pub fn print_series_u(x_label: &str, y_label: &str, rows: &[(u64, f64)]) {
    println!("  {x_label:>12}  {y_label:>14}");
    for (x, y) in rows {
        println!("  {x:>12}  {y:>14.6}");
    }
}

/// Downsamples a long series to at most `max_rows` (keeps first and last).
pub fn downsample<T: Copy>(rows: &[T], max_rows: usize) -> Vec<T> {
    if rows.len() <= max_rows || max_rows < 2 {
        return rows.to_vec();
    }
    let step = (rows.len() - 1) as f64 / (max_rows - 1) as f64;
    (0..max_rows)
        .map(|i| rows[(i as f64 * step).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_endpoints() {
        let rows: Vec<u32> = (0..100).collect();
        let d = downsample(&rows, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], 0);
        assert_eq!(*d.last().unwrap(), 99);
    }

    #[test]
    fn downsample_short_series_untouched() {
        let rows = vec![1, 2, 3];
        assert_eq!(downsample(&rows, 10), rows);
    }

    #[test]
    fn ctx_generates_consistent_dataset() {
        let ctx = Ctx::new(4, 9);
        assert!(ctx.crawl.san.num_social_nodes() > 100);
        ctx.crawl.san.check_consistency().unwrap();
        assert!(ctx.crawl.node_coverage > 0.5);
    }
}
