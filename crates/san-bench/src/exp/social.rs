//! §3 experiments: social structure of the Google+ SAN (Figs. 4–7).

use crate::{banner, downsample, print_series, print_series_u, Ctx};
use san_graph::degree::degree_vectors;
use san_metrics::clustering::{approx_average_clustering, NodeSet};
use san_metrics::hyperanf::{attribute_effective_diameter, social_effective_diameter};
use san_metrics::jdd::{social_assortativity, social_knn};
use san_metrics::reciprocity::global_reciprocity;
use san_metrics::social_density;
use san_stats::fit::fit_degree_distribution;
use san_stats::log_binned_pdf;

/// How often (in days) the evolution experiments sample the crawled
/// network; heavy metrics (diameter) are sampled at multiples of this.
const STEP: u32 = 7;

/// Figure 4: evolution of reciprocity, social density, diameters and the
/// average social clustering coefficient.
///
/// Expectation (paper): reciprocity fluctuates in I, declines in II,
/// declines faster in III; density dips then grows, dropping again at the
/// public release; diameters rise-fall-rise; clustering falls-rises-falls.
pub fn fig4(ctx: &Ctx) {
    banner(
        "Fig 4",
        "evolution of reciprocity / density / diameter / clustering",
    );
    let mut recip = Vec::new();
    let mut dens = Vec::new();
    let mut diam_social = Vec::new();
    let mut diam_attr = Vec::new();
    let mut clus = Vec::new();
    let mut rng = san_stats::SplitRng::new(ctx.seed ^ 0xF164);
    ctx.data.crawl_daily(|day, snap| {
        if day % STEP != 0 || day == 0 {
            return;
        }
        let san = &snap.san;
        let d = f64::from(day);
        recip.push((d, global_reciprocity(san)));
        dens.push((d, social_density(san)));
        // Paper operating point ε=0.002/ν=100 is exact-grade; ε=0.01 keeps
        // the sweep fast while staying well inside plot resolution.
        clus.push((
            d,
            approx_average_clustering(san, NodeSet::Social, 0.01, 100.0, &mut rng),
        ));
        if day % (2 * STEP) == 0 {
            diam_social.push((d, social_effective_diameter(san, 0.9, 6, ctx.seed)));
            diam_attr.push((d, attribute_effective_diameter(san, 0.9, 6, ctx.seed)));
        }
    });
    println!("(a) reciprocity");
    print_series("day", "reciprocity", &downsample(&recip, 14));
    println!("(b) social density |Es|/|Vs|");
    print_series("day", "density", &downsample(&dens, 14));
    println!("(c) effective diameter (social / attribute)");
    print_series("day", "social diam", &diam_social);
    print_series("day", "attr diam", &diam_attr);
    println!("(d) average social clustering coefficient (Algorithm 2)");
    print_series("day", "clustering", &downsample(&clus, 14));
}

/// Figure 5: social out/in-degree distributions with best fits.
///
/// Expectation (paper): both are best modelled by a discrete lognormal,
/// not a power law.
pub fn fig5(ctx: &Ctx) {
    banner(
        "Fig 5",
        "social degree distributions + best fits (lognormal expected)",
    );
    let dv = degree_vectors(&ctx.crawl.san);
    for (name, degrees) in [("outdegree", &dv.out), ("indegree", &dv.inc)] {
        let fit = fit_degree_distribution(degrees).expect("enough degrees at any scale");
        println!(
            "{name}: best family = {} | lognormal(mu={:.3}, sigma={:.3}) KS={:.4} | power-law(alpha={:.3}) KS={:.4}",
            fit.family, fit.mu, fit.sigma, fit.ks_lognormal, fit.alpha, fit.ks_powerlaw
        );
        let pdf = log_binned_pdf(degrees, 4);
        print_series("degree", "probability", &downsample(&pdf.points, 12));
    }
}

/// Figure 6: evolution of the fitted lognormal parameters of the social
/// degree distributions.
pub fn fig6(ctx: &Ctx) {
    banner(
        "Fig 6",
        "evolution of lognormal (mu, sigma) for out/in-degree",
    );
    let mut out_mu = Vec::new();
    let mut out_sigma = Vec::new();
    let mut in_mu = Vec::new();
    let mut in_sigma = Vec::new();
    ctx.data.crawl_daily(|day, snap| {
        if day % (2 * STEP) != 0 || day == 0 {
            return;
        }
        let dv = degree_vectors(&snap.san);
        let d = f64::from(day);
        if let Ok(fit) = fit_degree_distribution(&dv.out) {
            out_mu.push((d, fit.mu));
            out_sigma.push((d, fit.sigma));
        }
        if let Ok(fit) = fit_degree_distribution(&dv.inc) {
            in_mu.push((d, fit.mu));
            in_sigma.push((d, fit.sigma));
        }
    });
    println!("(a) outdegree");
    print_series("day", "mu", &out_mu);
    print_series("day", "sigma", &out_sigma);
    println!("(b) indegree");
    print_series("day", "mu", &in_mu);
    print_series("day", "sigma", &in_sigma);
}

/// Figure 7: social joint degree distribution — `knn` and the evolution of
/// the assortativity coefficient.
///
/// Expectation (paper): assortativity near zero (neutral) and declining —
/// Google+ drifts toward a publisher-subscriber network.
pub fn fig7(ctx: &Ctx) {
    banner(
        "Fig 7",
        "social knn + assortativity evolution (neutral, declining)",
    );
    let knn = social_knn(&ctx.crawl.san);
    println!("(a) knn (outdegree -> mean indegree of targets)");
    print_series_u("outdegree", "knn", &downsample(&knn, 15));
    let mut series = Vec::new();
    ctx.data.crawl_daily(|day, snap| {
        if day % STEP != 0 || day == 0 {
            return;
        }
        series.push((f64::from(day), social_assortativity(&snap.san)));
    });
    println!("(b) assortativity coefficient");
    print_series("day", "assortativity", &downsample(&series, 14));
    if let (Some(first), Some(last)) = (series.first(), series.last()) {
        println!(
            "assortativity {:.4} -> {:.4} (paper: ~+0.01 -> ~-0.01, neutral & declining)",
            first.1, last.1
        );
    }
}
