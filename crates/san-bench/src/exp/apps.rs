//! §6.2 experiments: application fidelity (Fig. 19) — SybilLimit and
//! anonymous communication on the real (simulated) Google+, our model with
//! and without focal closure, and the Zhel baseline.

use crate::{banner, Ctx};
use san_apps::anonymity::{timing_analysis_curve, AnonymityConfig};
use san_apps::sybil::{sybil_curve, SybilLimitConfig};
use san_core::closing::ClosingModel;
use san_core::model::{SanModel, SanModelParams};
use san_core::zhel::generate_zhel;
use san_graph::San;
use san_stats::SplitRng;

/// Figure 19: SybilLimit Sybil identities (a) and end-to-end timing
/// analysis probability (b) as functions of the number of compromised
/// nodes, across four topologies.
///
/// Expectation (paper): our model's curves track Google+ closely (≈3 %
/// error with fc = 0.1); Zhel's error is ≈4× worse.
pub fn fig19(ctx: &Ctx) {
    banner("Fig 19", "application fidelity: Sybil defense + anonymity");
    let per_day = ctx.scale;
    let days = 98;
    // Our model with fc = 0.1 (the paper's Fig. 19 setting) and fc = 0.
    let mut p_fc01 = SanModelParams::paper_default(days, per_day);
    p_fc01.closing = ClosingModel::RrSan { fc: 0.1 };
    let (_, ours_fc01) = SanModel::new(p_fc01)
        .expect("valid")
        .generate(ctx.seed + 19);
    let mut p_fc0 = SanModelParams::paper_default(days, per_day);
    p_fc0.closing = ClosingModel::RrSan { fc: 0.0 };
    let (_, ours_fc0) = SanModel::new(p_fc0).expect("valid").generate(ctx.seed + 19);
    let (_, zhel) = generate_zhel(days, per_day, ctx.seed + 19);

    let google = &ctx.crawl.san;
    // Compromise counts: up to ~2% of the population, as in the paper
    // (20k..200k of ~10M).
    let n = google.num_social_nodes();
    let counts: Vec<usize> = (1..=5).map(|i| n * 2 * i / 500).collect();

    println!("(a) SybilLimit (degree bound 100, w = 10)");
    println!(
        "  {:>12} {:>12} {:>12} {:>12} {:>12}",
        "compromised", "google+", "ours fc=.1", "ours fc=0", "zhel"
    );
    let cfg = SybilLimitConfig::default();
    let curve_for = |san: &San, salt: u64| -> Vec<f64> {
        let mut rng = SplitRng::new(ctx.seed ^ salt);
        sybil_curve(san, cfg, &counts, &mut rng)
            .into_iter()
            .map(|r| r.sybil_identities as f64)
            .collect()
    };
    let g = curve_for(google, 0x5B1);
    let o1 = curve_for(&ours_fc01, 0x5B2);
    let o0 = curve_for(&ours_fc0, 0x5B3);
    let z = curve_for(&zhel, 0x5B4);
    for (i, &c) in counts.iter().enumerate() {
        println!(
            "  {c:>12} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            g[i], o1[i], o0[i], z[i]
        );
    }
    let err = |m: &[f64]| -> f64 {
        let e: f64 = m
            .iter()
            .zip(&g)
            .map(|(a, b)| if *b > 0.0 { (a - b).abs() / b } else { 0.0 })
            .sum();
        100.0 * e / m.len() as f64
    };
    println!(
        "  mean relative error vs google+: ours fc=.1 {:.1}%  ours fc=0 {:.1}%  zhel {:.1}%",
        err(&o1),
        err(&o0),
        err(&z)
    );
    println!("  (paper: ours ~3.1% error, Zhel ~12.5% — about 4x worse)");

    println!("(b) anonymous communication: end-to-end timing analysis probability");
    let acfg = AnonymityConfig {
        degree_bound: 100,
        circuit_length: 6,
        samples: 100_000,
    };
    println!(
        "  {:>12} {:>12} {:>12} {:>12} {:>12}",
        "compromised", "google+", "ours fc=.1", "ours fc=0", "zhel"
    );
    let anon_for = |san: &San, salt: u64| -> Vec<f64> {
        let mut rng = SplitRng::new(ctx.seed ^ salt);
        timing_analysis_curve(san, acfg, &counts, &mut rng)
            .into_iter()
            .map(|(_, p)| p)
            .collect()
    };
    let ga = anon_for(google, 0xA51);
    let oa1 = anon_for(&ours_fc01, 0xA52);
    let oa0 = anon_for(&ours_fc0, 0xA53);
    let za = anon_for(&zhel, 0xA54);
    for (i, &c) in counts.iter().enumerate() {
        println!(
            "  {c:>12} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            ga[i], oa1[i], oa0[i], za[i]
        );
    }
}
