//! §5/§6.1/Appendix A experiments: attachment likelihoods (Fig. 15), model
//! vs Zhel metric comparison (Figs. 16–17), ablations (Fig. 18), the two
//! theorems, and the Algorithm 2 error sweep.

use crate::{banner, downsample, print_series_u, Ctx};
use san_core::attach::{relative_improvement, AttachModel};
use san_core::model::{SanModel, SanModelParams};
use san_core::theory::{predicted_attr_exponent, predicted_outdegree_lognormal};
use san_core::zhel::generate_zhel;
use san_graph::degree::degree_vectors;
use san_graph::San;
use san_metrics::clustering::{
    approx_average_clustering_k, average_clustering_exact, clustering_by_degree, NodeSet,
};
use san_metrics::jdd::attribute_knn;
use san_stats::fit::fit_degree_distribution;
use san_stats::{DiscretePowerLaw, Lognormal, SplitRng};

/// Scale used when the modeling experiments generate fresh synthetic SANs
/// (days, arrivals/day).
const GEN_DAYS: u32 = 98;

/// Figure 15: log-likelihood grid of PAPA and LAPA over (α, β), reported
/// as relative improvement over PA (α=1, β=0).
///
/// Expectation (paper): LAPA beats PAPA; α=1 is best for every β; PA beats
/// uniform by ~8 %; the best LAPA gains a further ~6 %.
pub fn fig15(ctx: &Ctx) {
    banner("Fig 15", "PAPA vs LAPA attachment likelihood grid");
    let tl = &ctx.data.timeline;
    let l_pa = AttachModel::Pa { alpha: 1.0 }
        .log_likelihood(tl)
        .expect("timeline has links");
    let l_uniform = AttachModel::Uniform.log_likelihood(tl).expect("links");
    println!(
        "PA improvement over uniform: {:+.1}% (paper: +7.9%)",
        100.0 * relative_improvement(l_uniform, l_pa)
    );
    let alphas = [0.0, 0.5, 1.0, 1.5, 2.0];
    println!("(a) PAPA: relative improvement over PA (rows alpha, cols beta)");
    let papa_betas = [0.0, 2.0, 4.0, 6.0, 8.0];
    print!("  {:>6}", "a\\b");
    for b in papa_betas {
        print!(" {b:>8.0}");
    }
    println!();
    for &a in &alphas {
        print!("  {a:>6.1}");
        for &b in &papa_betas {
            let l = AttachModel::Papa { alpha: a, beta: b }
                .log_likelihood(tl)
                .expect("links");
            print!(" {:>7.1}%", 100.0 * relative_improvement(l_pa, l));
        }
        println!();
    }
    println!("(b) LAPA: relative improvement over PA");
    let lapa_betas = [0.0, 10.0, 100.0, 200.0, 500.0];
    print!("  {:>6}", "a\\b");
    for b in lapa_betas {
        print!(" {b:>8.0}");
    }
    println!();
    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    for &a in &alphas {
        print!("  {a:>6.1}");
        for &b in &lapa_betas {
            let l = AttachModel::Lapa { alpha: a, beta: b }
                .log_likelihood(tl)
                .expect("links");
            if l > best.0 {
                best = (l, a, b);
            }
            print!(" {:>7.1}%", 100.0 * relative_improvement(l_pa, l));
        }
        println!();
    }
    println!(
        "best LAPA: alpha={} beta={} ({:+.1}% over PA; paper: alpha=1 best, +6.1%)",
        best.1,
        best.2,
        100.0 * relative_improvement(l_pa, best.0)
    );
}

/// Prints the four degree-distribution fits of a SAN as one Fig. 16 row.
fn fit_row(label: &str, san: &San) {
    let dv = degree_vectors(san);
    let fits = [
        ("outdeg", fit_degree_distribution(&dv.out)),
        ("indeg", fit_degree_distribution(&dv.inc)),
        ("attrdeg", fit_degree_distribution(&dv.attr_of_social)),
        ("attr-social", fit_degree_distribution(&dv.social_of_attr)),
    ];
    for (name, fit) in fits {
        match fit {
            Ok(f) => println!(
                "  {label:<10} {name:<12} best={:<10} llr/n={:+.4}  ln(mu={:.2},sg={:.2}) KSln={:.3}  pl(a={:.2}) KSpl={:.3}",
                f.family.to_string(),
                f.llr_per_sample(),
                f.mu,
                f.sigma,
                f.ks_lognormal,
                f.alpha,
                f.ks_powerlaw
            ),
            Err(e) => println!("  {label:<10} {name:<12} unfittable: {e}"),
        }
    }
}

/// Figure 16: degree distributions of synthetic SANs — our model vs Zhel.
///
/// Expectation (paper): our model reproduces Google+'s lognormal social
/// out/in/attribute degrees and power-law attribute social degrees; Zhel
/// produces power-law social degrees and non-lognormal attribute degrees.
pub fn fig16(ctx: &Ctx) {
    banner("Fig 16", "degree distributions: our model vs Zhel baseline");
    let per_day = ctx.scale;
    println!("reference (crawled synthetic Google+):");
    fit_row("google+", &ctx.crawl.san);
    let (_, ours) = SanModel::new(SanModelParams::paper_default(GEN_DAYS, per_day))
        .expect("valid defaults")
        .generate(ctx.seed + 16);
    println!("our model (a-d):");
    fit_row("ours", &ours);
    let (_, zhel) = generate_zhel(GEN_DAYS, per_day, ctx.seed + 16);
    println!("Zhel baseline (e-h):");
    fit_row("zhel", &zhel);
}

/// Figure 17: joint degree distribution of attribute nodes and clustering
/// coefficient distributions — our model vs Zhel.
pub fn fig17(ctx: &Ctx) {
    banner(
        "Fig 17",
        "attribute knn + clustering distributions: ours vs Zhel",
    );
    let per_day = ctx.scale;
    let (_, ours) = SanModel::new(SanModelParams::paper_default(GEN_DAYS, per_day))
        .expect("valid defaults")
        .generate(ctx.seed + 17);
    let (_, zhel) = generate_zhel(GEN_DAYS, per_day, ctx.seed + 17);
    for (label, san) in [
        ("google+", &ctx.crawl.san),
        ("ours", &ours),
        ("zhel", &zhel),
    ] {
        println!("({label}) attribute knn");
        print_series_u("social degree", "knn", &downsample(&attribute_knn(san), 10));
        println!("({label}) clustering by degree");
        let soc = clustering_by_degree(san, NodeSet::Social);
        let att = clustering_by_degree(san, NodeSet::Attr);
        print_series_u("social degree", "social c", &downsample(&soc, 8));
        print_series_u("attr degree", "attr c", &downsample(&att, 8));
        println!(
            "  average clustering: social={:.4} attribute={:.4}",
            average_clustering_exact(san, NodeSet::Social),
            average_clustering_exact(san, NodeSet::Attr),
        );
    }
}

/// Figure 18: the two ablations — PA instead of LAPA (a), RR instead of
/// RR-SAN (b).
///
/// Expectation (paper): (a) flips the social in-degree from lognormal
/// towards a power law; (b) collapses the attribute clustering
/// coefficient.
pub fn fig18(ctx: &Ctx) {
    banner("Fig 18", "ablations: w/o LAPA (a), w/o focal closure (b)");
    let per_day = ctx.scale;
    let full_params = SanModelParams::paper_default(GEN_DAYS, per_day);
    let (_, full) = SanModel::new(full_params.clone())
        .expect("valid")
        .generate(ctx.seed + 18);
    let (_, no_lapa) = SanModel::new(full_params.clone().without_lapa())
        .expect("valid")
        .generate(ctx.seed + 18);
    let (_, no_focal) = SanModel::new(full_params.without_focal_closure())
        .expect("valid")
        .generate(ctx.seed + 18);

    println!("(a) social in-degree with / without LAPA");
    let indeg = |san: &San| -> Vec<u64> {
        san.social_nodes()
            .skip(5)
            .map(|u| san.in_degree(u) as u64)
            .collect()
    };
    for (label, san) in [("full model", &full), ("w/o LAPA", &no_lapa)] {
        let fit = fit_degree_distribution(&indeg(san)).expect("degrees");
        println!(
            "  {label:<12} best={:<10} llr/n={:+.4} KSln={:.3} KSpl={:.3}",
            fit.family.to_string(),
            fit.llr_per_sample(),
            fit.ks_lognormal,
            fit.ks_powerlaw
        );
    }

    println!("(b) attribute clustering with / without focal closure");
    for (label, san) in [("full model", &full), ("w/o focal", &no_focal)] {
        println!(
            "  {label:<12} avg attribute clustering = {:.4}",
            average_clustering_exact(san, NodeSet::Attr)
        );
    }
}

/// Theorems 1 and 2: predictions vs simulation.
pub fn theory(ctx: &Ctx) {
    banner(
        "Theory",
        "Theorem 1 (lognormal out-degree) + Theorem 2 (attr exponent)",
    );
    // Theorem 1 at the paper_default operating point.
    let (mu_l, sigma_l, ms) = (8.0, 6.0, 8.0);
    let (mu_pred, sigma_pred) = predicted_outdegree_lognormal(mu_l, sigma_l, ms).expect("valid");
    let (_, san) = SanModel::new(SanModelParams::paper_default(150, ctx.scale.max(20)))
        .expect("valid")
        .generate(ctx.seed + 100);
    let n = san.num_social_nodes();
    let degrees: Vec<f64> = (5..n * 3 / 4)
        .map(|i| san.out_degree(san_graph::SocialId(i as u32)) as f64)
        .filter(|&d| d > 0.0)
        .collect();
    let fit = Lognormal::fit(&degrees).expect("degrees");
    println!(
        "Theorem 1: predicted lognormal(mu={mu_pred:.3}, sigma={sigma_pred:.3}); fitted (mu={:.3}, sigma={:.3})",
        fit.mu, fit.sigma
    );

    // Theorem 2 sweep.
    println!("Theorem 2: attribute social-degree exponent (2-p)/(1-p)");
    println!("  {:>6} {:>10} {:>10}", "p", "predicted", "fitted");
    for &p_new in &[0.1, 0.2, 1.0 / 3.0, 0.5] {
        let mut params = SanModelParams::paper_default(100, ctx.scale.max(20));
        params.attr_assign = san_core::model::AttrAssign::Lognormal {
            mu: 1.0,
            sigma: 0.8,
            p_new,
        };
        let (_, san) = SanModel::new(params)
            .expect("valid")
            .generate(ctx.seed + 101);
        let degrees: Vec<u64> = san
            .attr_nodes()
            .map(|a| san.social_degree_of_attr(a) as u64)
            .filter(|&d| d >= 1)
            .collect();
        let fitted = DiscretePowerLaw::fit(&degrees, 3)
            .map(|f| f.alpha())
            .unwrap_or(f64::NAN);
        println!(
            "  {p_new:>6.2} {:>10.3} {fitted:>10.3}",
            predicted_attr_exponent(p_new).expect("valid p")
        );
    }
}

/// Appendix A / Algorithm 2: estimator error vs sample budget against the
/// Hoeffding bound.
pub fn alg2(ctx: &Ctx) {
    banner(
        "Alg 2",
        "constant-time clustering estimator: error vs budget",
    );
    let san = &ctx.crawl.san;
    let exact = average_clustering_exact(san, NodeSet::Social);
    println!("exact average social clustering = {exact:.5}");
    println!(
        "  {:>10} {:>12} {:>12} {:>14}",
        "K", "estimate", "|error|", "hoeffding eps(nu=100)"
    );
    let mut rng = SplitRng::new(ctx.seed ^ 0xA162);
    for k in [100usize, 1_000, 10_000, 100_000, 662_290] {
        let est = approx_average_clustering_k(san, NodeSet::Social, k, &mut rng);
        let eps = san_stats::hoeffding::hoeffding_epsilon(k, 100.0);
        println!(
            "  {k:>10} {est:>12.5} {:>12.5} {eps:>14.5}",
            (est - exact).abs()
        );
    }
    println!("(paper operating point: eps=0.002, nu=100 -> K=662,290)");
}
