//! §4.2/§5.2 experiments: attribute influence on the social structure
//! (Figs. 13–14) and the triangle-closure taxonomy.

use crate::{banner, Ctx};
use san_core::closing::ClosingModel;
use san_metrics::clustering::attr_clustering_by_type;
use san_metrics::influence::{classify_closures, degree_percentiles_by_attr, top_attrs_by_type};
use san_metrics::reciprocity::{fine_grained_reciprocity, reciprocity_by_attr_class};
use san_sim::vocab::find_label;

/// Figure 13: (a) fine-grained reciprocity `r_{s,a}` from the halfway to
/// the last snapshot, and (b) attribute clustering per attribute type.
///
/// Expectation (paper): sharing any attribute roughly doubles the
/// reciprocation rate at every common-friend count; Employer communities
/// cluster far more than City.
pub fn fig13(ctx: &Ctx) {
    banner(
        "Fig 13",
        "attribute influence on reciprocity and clustering",
    );
    // Halfway snapshot of the *ground truth* (same id space as the final).
    let halfway = ctx.data.timeline.snapshot_at(49);
    let cells = fine_grained_reciprocity(&halfway, &ctx.data.truth);
    let (r0, r1, r2) = reciprocity_by_attr_class(&cells);
    println!("(a) reciprocation of halfway one-directional links by #common attributes");
    println!("  common attrs      rate");
    println!("  0                 {r0:.4}");
    println!("  1                 {r1:.4}");
    println!("  >=2               {r2:.4}");
    let boost = if r0 > 0.0 { r1.max(r2) / r0 } else { f64::NAN };
    println!("  boost from sharing attributes: {boost:.2}x (paper: ~2x)");
    // r_{s,a} by common-social bucket for the richest cells.
    println!("  (s = common social neighbours, a = common attributes)");
    println!("  {:>4} {:>3} {:>8} {:>8}", "s", "a", "links", "rate");
    for c in cells.iter().filter(|c| c.links >= 20).take(20) {
        println!(
            "  {:>4} {:>3} {:>8} {:>8.4}",
            c.common_social,
            c.common_attrs,
            c.links,
            c.rate()
        );
    }

    println!("(b) average attribute clustering coefficient per type");
    let per_type = attr_clustering_by_type(&ctx.crawl.san);
    for (ty, avg, n) in &per_type {
        println!("  {ty:>9}: {avg:.4}  ({n} attribute nodes)");
    }
}

/// Figure 14: social out-degree percentiles of the members of the top
/// Employer and Major values.
///
/// Expectation (paper): Employer=Google and Major=Computer Science members
/// have the highest degrees (early-adopter effect).
pub fn fig14(ctx: &Ctx) {
    banner(
        "Fig 14",
        "degree percentiles for top Employer / Major values",
    );
    let san = &ctx.crawl.san;
    // Map crawl-local attr ids through provenance into truth labels.
    let label_of = |crawl_attr: san_graph::AttrId| -> &str {
        let truth_attr = ctx.crawl.attr_origin[crawl_attr.index()];
        &ctx.data.labels[truth_attr.index()]
    };
    for ty in [san_graph::AttrType::Employer, san_graph::AttrType::Major] {
        println!("({ty})");
        let top = top_attrs_by_type(san, ty, 4);
        let stats = degree_percentiles_by_attr(san, &top);
        println!(
            "  {:>18} {:>8} {:>8} {:>8} {:>8}",
            "value", "members", "p25", "median", "p75"
        );
        for s in &stats {
            println!(
                "  {:>18} {:>8} {:>8.1} {:>8.1} {:>8.1}",
                label_of(s.attr),
                s.members,
                s.p25,
                s.p50,
                s.p75
            );
        }
    }
    // Sanity anchor: the most popular employer ("Google" by construction)
    // should top the median-degree table.
    if let Some(google) = find_label(&ctx.data.labels, "Google") {
        let members = ctx.data.truth.social_degree_of_attr(google);
        println!("(truth: 'Google' has {members} members)");
    }
}

/// §5.2 closure table: the triadic/focal/both mix of observed new links,
/// and the Baseline vs RR vs RR-SAN comparison.
///
/// Expectation (paper): 84 % triadic / 18 % focal / 15 % both; RR beats
/// Baseline by ~14 %, RR-SAN beats RR by ~36 %.
pub fn closure(ctx: &Ctx) {
    banner("Closure", "triangle-closure mix + model comparison (§5.2)");
    // Replay the growth log, scoring every qualifying friend request
    // against the network state *at request time* (the network the
    // requester actually saw). Qualifying: both endpoints at least 49 days
    // old (so their neighbourhoods are established) and the request is not
    // a reciprocation.
    let n_half = ctx.data.timeline.snapshot_at(49).num_social_nodes() as u32;
    let mut san = san_graph::San::new();
    let mut mix = san_metrics::influence::ClosureMix::default();
    let mut scores = [0.0f64; 3]; // Baseline, RR, RR-SAN
    let mut covered = [0usize; 3];
    let mut scored_events = 0usize;
    let models = [
        ClosingModel::Baseline,
        ClosingModel::Rr,
        ClosingModel::RrSan { fc: 1.0 },
    ];
    for ev in ctx.data.timeline.events() {
        use san_graph::SanEvent;
        if let SanEvent::SocialLink { day, src, dst } = *ev {
            let qualifying =
                day > 49 && src.0 < n_half && dst.0 < n_half && !san.has_social_link(dst, src);
            if qualifying {
                let single = classify_closures(&san, &[(src, dst)]);
                mix.total += single.total;
                mix.triadic += single.triadic;
                mix.focal += single.focal;
                mix.both += single.both;
                mix.neither += single.neither;
                if single.neither == 0 {
                    // Explainable: score all three models.
                    scored_events += 1;
                    let floor = 1.0 / san.num_social_nodes() as f64;
                    for (i, m) in models.iter().enumerate() {
                        let p = m.closure_probability(&san, src, dst);
                        if p > 0.0 {
                            covered[i] += 1;
                        }
                        scores[i] += p.max(floor).ln();
                    }
                }
            }
        }
        apply_event(&mut san, ev);
    }
    println!(
        "{} closure events: triadic={:.1}%  focal={:.1}%  both={:.1}%  neither={:.1}%",
        mix.total,
        100.0 * mix.triadic_frac(),
        100.0 * mix.focal_frac(),
        100.0 * mix.both_frac(),
        100.0 * mix.neither_frac()
    );
    println!("(paper: 84% triadic, 18% focal, 15% both)");

    // Mean log proposal probability; events a model cannot propose fall
    // back to a uniform guess over all users, pricing in coverage.
    let s: Vec<f64> = scores.iter().map(|x| x / scored_events as f64).collect();
    let cov = |i: usize| 100.0 * covered[i] as f64 / scored_events as f64;
    let imp = |l_ref: f64, l: f64| 100.0 * (l_ref - l) / l_ref;
    println!("mean log proposal probability over {scored_events} explainable events:");
    println!("  Baseline = {:.4}  (coverage {:.1}%)", s[0], cov(0));
    println!(
        "  RR       = {:.4}  (coverage {:.1}%)  {:+.1}% vs Baseline (paper: +14%)",
        s[1],
        cov(1),
        imp(s[0], s[1])
    );
    println!(
        "  RR-SAN   = {:.4}  (coverage {:.1}%)  {:+.1}% vs RR (paper: +36%)",
        s[2],
        cov(2),
        imp(s[1], s[2])
    );
}

/// Applies one timeline event to a replay SAN.
fn apply_event(san: &mut san_graph::San, ev: &san_graph::SanEvent) {
    use san_graph::SanEvent;
    match *ev {
        SanEvent::SocialNode { .. } => {
            san.add_social_node();
        }
        SanEvent::AttrNode { ty, .. } => {
            san.add_attr_node(ty);
        }
        SanEvent::SocialLink { src, dst, .. } => {
            san.add_social_link(src, dst);
        }
        SanEvent::AttrLink { user, attr, .. } => {
            san.add_attr_link(user, attr);
        }
    }
}
