//! §2.2 experiments: growth curves (Figs. 2–3) and crawl coverage.
//!
//! The crawled curves need a per-day BFS crawl (the crawler's view *is*
//! the measurement), but the ground-truth overlays are counter-only, so
//! they ride [`evolve_metric_counts`] — the non-freezing count path of the
//! snapshot pipeline — instead of freezing or crawling anything.

use crate::{banner, downsample, print_series_u, Ctx};
use san_metrics::evolution::{evolve_metric_counts, PhaseBounds};

/// Figure 2: growth in the number of social and attribute nodes.
///
/// Expectation (paper): both curves show the three-phase pattern — steep
/// Phase I, steady Phase II, steep Phase III.
pub fn fig2(ctx: &Ctx) {
    banner("Fig 2", "growth of social and attribute nodes (crawled)");
    let mut social = Vec::new();
    let mut attrs = Vec::new();
    ctx.data.crawl_daily(|day, snap| {
        social.push((u64::from(day), snap.san.num_social_nodes() as f64));
        attrs.push((u64::from(day), snap.san.num_attr_nodes() as f64));
    });
    println!("(a) social nodes");
    print_series_u("day", "nodes", &downsample(&social, 20));
    println!("(b) attribute nodes");
    print_series_u("day", "nodes", &downsample(&attrs, 20));
    print_truth_overlay(ctx, "nodes", |c| c.social_nodes as f64);
    phase_deltas("social nodes", &social);
}

/// Figure 3: growth in the number of social and attribute links.
pub fn fig3(ctx: &Ctx) {
    banner("Fig 3", "growth of social and attribute links (crawled)");
    let mut social = Vec::new();
    let mut attrs = Vec::new();
    ctx.data.crawl_daily(|day, snap| {
        social.push((u64::from(day), snap.san.num_social_links() as f64));
        attrs.push((u64::from(day), snap.san.num_attr_links() as f64));
    });
    println!("(a) social links");
    print_series_u("day", "links", &downsample(&social, 20));
    println!("(b) attribute links");
    print_series_u("day", "links", &downsample(&attrs, 20));
    print_truth_overlay(ctx, "links", |c| c.social_links as f64);
    phase_deltas("social links", &social);
}

/// Prints the ground-truth counterpart of a crawled growth curve through
/// the non-freezing counter path of the snapshot pipeline.
fn print_truth_overlay(ctx: &Ctx, unit: &str, counter: impl FnMut(&san_graph::DayCounts) -> f64) {
    let truth = evolve_metric_counts(&ctx.data.timeline, "ground truth", 1, counter);
    println!("(a, ground truth — counter path, zero freezes)");
    let rows: Vec<(u64, f64)> = truth
        .days
        .iter()
        .zip(&truth.values)
        .map(|(d, v)| (u64::from(*d), *v))
        .collect();
    print_series_u("day", unit, &downsample(&rows, 20));
}

/// §2.2 crawl-coverage claim: the BFS crawler over public in+out lists
/// covers ≥ 70 % of the ground truth.
pub fn coverage(ctx: &Ctx) {
    banner(
        "Coverage",
        "crawler coverage vs ground truth (>= 70% claim)",
    );
    let mut rows = Vec::new();
    ctx.data.crawl_daily(|day, snap| {
        rows.push((u64::from(day), snap.node_coverage));
    });
    print_series_u("day", "node coverage", &downsample(&rows, 15));
    let last = ctx.crawl.node_coverage;
    println!(
        "final-day node coverage = {last:.3} (links: {:.3}); paper claims >= 0.70",
        ctx.crawl.link_coverage
    );
}

/// Prints per-phase daily growth rates — the quantitative form of the
/// "three distinct phases" observation.
fn phase_deltas(label: &str, series: &[(u64, f64)]) {
    let b = PhaseBounds::PAPER;
    let rate = |lo: u64, hi: u64| -> f64 {
        let first = series.iter().find(|(d, _)| *d >= lo);
        let last = series.iter().rev().find(|(d, _)| *d <= hi);
        match (first, last) {
            (Some(&(d0, v0)), Some(&(d1, v1))) if d1 > d0 => (v1 - v0) / (d1 - d0) as f64,
            _ => 0.0,
        }
    };
    let r1 = rate(1, u64::from(b.phase1_end));
    let r2 = rate(u64::from(b.phase1_end) + 1, u64::from(b.phase2_end));
    let r3 = rate(u64::from(b.phase2_end) + 1, u64::MAX);
    println!("{label}: daily growth I={r1:.1}  II={r2:.1}  III={r3:.1} (expect I,III >> II)");
}
