//! §4.1/§4.3 experiments: attribute structure of the SAN (Figs. 8–12).

use crate::{banner, downsample, print_series, print_series_u, Ctx};
use san_graph::degree::degree_vectors;
use san_metrics::clustering::{clustering_by_degree, NodeSet};
use san_metrics::jdd::{attribute_assortativity, attribute_knn};
use san_metrics::validate::subsampling_validation;
use san_metrics::{approx_average_clustering, attr_density};
use san_stats::fit::fit_degree_distribution;
use san_stats::log_binned_pdf;

const STEP: u32 = 7;

/// Figure 8: evolution of attribute density and the average attribute
/// clustering coefficient.
///
/// Expectation (paper): attribute density rises in Phase I, flat in II,
/// slightly falls in III; attribute clustering is stable in Phase II.
pub fn fig8(ctx: &Ctx) {
    banner(
        "Fig 8",
        "attribute density + attribute clustering evolution",
    );
    let mut dens = Vec::new();
    let mut clus = Vec::new();
    let mut rng = san_stats::SplitRng::new(ctx.seed ^ 0xF168);
    ctx.data.crawl_daily(|day, snap| {
        if day % STEP != 0 || day == 0 {
            return;
        }
        let d = f64::from(day);
        dens.push((d, attr_density(&snap.san)));
        clus.push((
            d,
            approx_average_clustering(&snap.san, NodeSet::Attr, 0.01, 100.0, &mut rng),
        ));
    });
    println!("(a) attribute density |Ea|/|Va|");
    print_series("day", "density", &downsample(&dens, 14));
    println!("(b) average attribute clustering coefficient");
    print_series("day", "clustering", &downsample(&clus, 14));
}

/// Figure 9: clustering coefficient vs node degree — social vs attribute
/// (a), and the §4.3 subsampling validation (b).
///
/// Expectation (paper): both follow power-law-like decay; attribute
/// clustering is lower with a steeper exponent; the subsampled curve
/// overlays the original.
pub fn fig9(ctx: &Ctx) {
    banner(
        "Fig 9",
        "clustering vs degree (social/attribute) + subsample check",
    );
    let san = &ctx.crawl.san;
    let social = clustering_by_degree(san, NodeSet::Social);
    let attr = clustering_by_degree(san, NodeSet::Attr);
    println!("(a) social clustering by degree");
    print_series_u("degree", "clustering", &downsample(&social, 14));
    println!("(a) attribute clustering by degree");
    print_series_u("degree", "clustering", &downsample(&attr, 14));
    let slope = |series: &[(u64, f64)]| {
        let pts: Vec<(f64, f64)> = series.iter().map(|&(d, c)| (d as f64, c)).collect();
        san_stats::summary::log_log_slope(&pts).map(|f| f.slope)
    };
    if let (Some(s_soc), Some(s_attr)) = (slope(&social), slope(&attr)) {
        println!(
            "log-log slopes: social={s_soc:.3} attribute={s_attr:.3} (paper: attribute steeper)"
        );
    }
    println!("(b) subsampling validation (keep attributes w.p. 0.5)");
    let mut rng = san_stats::SplitRng::new(ctx.seed ^ 0xF169);
    let cmp = subsampling_validation(san, 0.5, &mut rng);
    println!(
        "mean |original - subsampled| over {} shared degrees = {:.5} (paper: curves overlap)",
        cmp.common_degrees, cmp.mean_abs_diff
    );
}

/// Figure 10: the two attribute-induced degree distributions with fits.
///
/// Expectation (paper): attribute degree of social nodes ⇒ lognormal;
/// social degree of attribute nodes ⇒ power law.
pub fn fig10(ctx: &Ctx) {
    banner("Fig 10", "attribute-induced degree distributions + fits");
    let dv = degree_vectors(&ctx.crawl.san);
    let attr_deg = fit_degree_distribution(&dv.attr_of_social)
        .expect("declared users provide positive attribute degrees");
    println!(
        "(a) attribute degree of social nodes: best = {} | lognormal(mu={:.3}, sigma={:.3}) | power-law alpha={:.3}",
        attr_deg.family, attr_deg.mu, attr_deg.sigma, attr_deg.alpha
    );
    let pdf = log_binned_pdf(&dv.attr_of_social, 4);
    print_series("degree", "probability", &downsample(&pdf.points, 10));

    let soc_of_attr =
        fit_degree_distribution(&dv.social_of_attr).expect("attribute nodes have members");
    println!(
        "(b) social degree of attribute nodes: best = {} | power-law alpha={:.3} KS={:.4} | lognormal KS={:.4}",
        soc_of_attr.family, soc_of_attr.alpha, soc_of_attr.ks_powerlaw, soc_of_attr.ks_lognormal
    );
    let pdf = log_binned_pdf(&dv.social_of_attr, 4);
    print_series("degree", "probability", &downsample(&pdf.points, 10));
}

/// Figure 11: evolution of the fitted parameters of Fig. 10's
/// distributions.
pub fn fig11(ctx: &Ctx) {
    banner("Fig 11", "evolution of attribute-degree fit parameters");
    let mut mu = Vec::new();
    let mut sigma = Vec::new();
    let mut alpha = Vec::new();
    ctx.data.crawl_daily(|day, snap| {
        if day % (2 * STEP) != 0 || day == 0 {
            return;
        }
        let dv = degree_vectors(&snap.san);
        let d = f64::from(day);
        if let Ok(fit) = fit_degree_distribution(&dv.attr_of_social) {
            mu.push((d, fit.mu));
            sigma.push((d, fit.sigma));
        }
        if let Ok(fit) = fit_degree_distribution(&dv.social_of_attr) {
            alpha.push((d, fit.alpha));
        }
    });
    println!("(a) attribute degree of social nodes: lognormal parameters");
    print_series("day", "mu", &mu);
    print_series("day", "sigma", &sigma);
    println!("(b) social degree of attribute nodes: power-law exponent");
    print_series("day", "alpha", &alpha);
}

/// Figure 12: attribute joint degree distribution — `knn` and the
/// attribute assortativity evolution.
///
/// Expectation (paper): neutral-to-slightly-negative, stable in Phase III
/// (unlike the social assortativity, which keeps falling).
pub fn fig12(ctx: &Ctx) {
    banner(
        "Fig 12",
        "attribute knn + attribute assortativity evolution",
    );
    let knn = attribute_knn(&ctx.crawl.san);
    println!("(a) attribute knn (social degree -> mean member attr degree)");
    print_series_u("social degree", "knn", &downsample(&knn, 15));
    let mut series = Vec::new();
    ctx.data.crawl_daily(|day, snap| {
        if day % STEP != 0 || day == 0 {
            return;
        }
        series.push((f64::from(day), attribute_assortativity(&snap.san)));
    });
    println!("(b) attribute assortativity coefficient");
    print_series("day", "assortativity", &downsample(&series, 14));
}
