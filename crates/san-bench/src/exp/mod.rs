//! Experiment implementations, one per table/figure of the paper.
//!
//! | Target | Paper artefact | Module |
//! |--------|----------------|--------|
//! | `fig2` `fig3` `coverage` | growth curves, crawl coverage (§2.2) | [`growth`] |
//! | `fig4` `fig5` `fig6` `fig7` | social-structure metrics (§3) | [`social`] |
//! | `fig8` `fig9` `fig10` `fig11` `fig12` | attribute structure (§4.1, §4.3) | [`attribute`] |
//! | `fig13` `fig14` `closure` | attribute influence (§4.2, §5.2) | [`influence`] |
//! | `fig15` `fig16` `fig17` `fig18` `theory` `alg2` | models (§5, §6.1, App. A) | [`modeling`] |
//! | `fig19` | application fidelity (§6.2) | [`apps`] |

pub mod apps;
pub mod attribute;
pub mod growth;
pub mod influence;
pub mod modeling;
pub mod social;

use crate::Ctx;

/// Every experiment id, in paper order (what `all` runs).
pub const ALL: &[&str] = &[
    "fig2", "fig3", "coverage", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "closure", "fig16", "fig17", "fig18", "fig19", "theory",
    "alg2",
];

/// Dispatches one experiment by id; returns false for unknown ids.
pub fn run(id: &str, ctx: &Ctx) -> bool {
    match id {
        "fig2" => growth::fig2(ctx),
        "fig3" => growth::fig3(ctx),
        "coverage" => growth::coverage(ctx),
        "fig4" => social::fig4(ctx),
        "fig5" => social::fig5(ctx),
        "fig6" => social::fig6(ctx),
        "fig7" => social::fig7(ctx),
        "fig8" => attribute::fig8(ctx),
        "fig9" => attribute::fig9(ctx),
        "fig10" => attribute::fig10(ctx),
        "fig11" => attribute::fig11(ctx),
        "fig12" => attribute::fig12(ctx),
        "fig13" => influence::fig13(ctx),
        "fig14" => influence::fig14(ctx),
        "closure" => influence::closure(ctx),
        "fig15" => modeling::fig15(ctx),
        "fig16" => modeling::fig16(ctx),
        "fig17" => modeling::fig17(ctx),
        "fig18" => modeling::fig18(ctx),
        "theory" => modeling::theory(ctx),
        "alg2" => modeling::alg2(ctx),
        "fig19" => apps::fig19(ctx),
        _ => return false,
    }
    true
}
