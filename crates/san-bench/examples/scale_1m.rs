//! Google+-scale smoke: synthesize a ~million-node, 98-day timeline and
//! persist it **as it grows** — the bounded-memory pipeline of the v2
//! store. Events stream day by day from the generative engine straight
//! into a [`StreamingVaultWriter`]; at no point is the full event log or
//! more than two snapshots resident.
//!
//! After synthesis the vault is reopened cold and spot-checked: the final
//! persisted day must be bit-identical to the ground truth, full days
//! must open fast, and delta days must reconstruct through their chain.
//!
//! Environment knobs (all optional):
//!
//! * `SCALE_ARRIVALS` — Phase II arrivals/day (default 10000 ≈ 1.6 M
//!   social nodes over the three-phase schedule; use ~100 for a smoke run)
//! * `SCALE_DAYS` — simulated days (default 98)
//! * `SCALE_STEP` — persist every `step`-th day (default 7)
//! * `SCALE_FULL_EVERY` — a full v2 day every N persisted days, deltas
//!   between (default 4)
//! * `SCALE_SEED` — RNG seed (default 1)
//! * `SCALE_DIR` — vault directory (default: fresh temp dir, removed on
//!   success)
//! * `SCALE_JSON` — when set, write the recorded metrics to this path as
//!   JSON (`graph/scale_1m` suite)

use san_graph::store::{DayFormat, SnapshotVault, StreamingVaultWriter};
use san_graph::SanRead;
use san_sim::{GooglePlus, GooglePlusParams};
use std::path::PathBuf;
use std::time::Instant;

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let arrivals = env_u32("SCALE_ARRIVALS", 10_000);
    let days = env_u32("SCALE_DAYS", 98);
    let step = env_u32("SCALE_STEP", 7);
    let full_every = env_u32("SCALE_FULL_EVERY", 4);
    let seed = env_u64("SCALE_SEED", 1);
    let (dir, keep_dir) = match std::env::var("SCALE_DIR") {
        Ok(d) => (PathBuf::from(d), true),
        Err(_) => (
            std::env::temp_dir().join(format!("san-scale-{}", std::process::id())),
            false,
        ),
    };

    let mut params = GooglePlusParams::at_scale(arrivals);
    params.days = days;
    let gp = GooglePlus::new(params).expect("valid scale parameters");
    let expected_nodes = gp.params().engine.total_social_nodes();
    println!(
        "synthesize {days} days @ {arrivals}/day (Phase II) ≈ {expected_nodes} social nodes \
         → {} (step {step}, full every {full_every})",
        dir.display()
    );

    // --- Streaming synthesize-and-persist -------------------------------
    let _ = std::fs::remove_dir_all(&dir);
    let mut vault = SnapshotVault::create(&dir).expect("create vault");
    let started = Instant::now();
    let mut events_total = 0u64;
    let mut writer = StreamingVaultWriter::new(&mut vault, step, full_every);
    let truth = gp.generate_streaming(seed, |day, events| {
        events_total += events.len() as u64;
        writer.apply_day(events).expect("persist day");
        if day % 14 == 0 {
            eprintln!(
                "  day {day:3}: +{} events ({events_total} total, {:.0?} elapsed)",
                events.len(),
                started.elapsed()
            );
        }
    });
    let v1_equivalent = writer.v1_equivalent_bytes();
    let saved = writer.finish().expect("persist final day");
    let synth_secs = started.elapsed().as_secs_f64();
    let events_per_sec = events_total as f64 / synth_secs;
    let peak_rss = peak_rss_bytes();
    let v2_disk = vault.disk_bytes();
    drop(vault);

    println!(
        "synthesized {} nodes / {} links ({events_total} events) in {synth_secs:.1} s \
         = {events_per_sec:.0} events/s",
        truth.num_social_nodes(),
        truth.num_social_links(),
    );
    if let Some(rss) = peak_rss {
        println!("peak RSS {:.0} MiB", mib(rss));
    }
    println!(
        "persisted {} days: v2 vault {:.1} MiB vs v1-equivalent {:.1} MiB ({:.2}x)",
        saved.len(),
        mib(v2_disk),
        mib(v1_equivalent),
        v2_disk as f64 / v1_equivalent.max(1) as f64,
    );

    // --- Cold reopen + spot-check ---------------------------------------
    let vault = SnapshotVault::open(&dir).expect("reopen vault");
    let last_full = saved
        .iter()
        .rev()
        .find(|&&d| vault.day_format(d) == Some(DayFormat::V2Full))
        .copied()
        .expect("at least day 0 is full");
    let deepest_delta = saved
        .iter()
        .rev()
        .find(|&&d| matches!(vault.day_format(d), Some(DayFormat::V2Delta { .. })))
        .copied();

    let t = Instant::now();
    let full_snap = vault.load_day(last_full).expect("load full day");
    let cold_open = t.elapsed();
    println!(
        "cold open of full day {last_full} ({} nodes): {cold_open:.0?}",
        full_snap.num_social_nodes()
    );

    let delta_reconstruct = deepest_delta.map(|day| {
        let t = Instant::now();
        let snap = vault.load_day(day).expect("reconstruct delta day");
        let took = t.elapsed();
        let links = vault.metrics().delta_links_applied();
        println!(
            "delta-chain reconstruct of day {day} ({} nodes, {links} links applied): {took:.0?}",
            snap.num_social_nodes()
        );
        took
    });

    let final_day = *saved.last().expect("nonempty grid");
    let loaded = vault.load_day(final_day).expect("load final day");
    assert_eq!(
        *loaded,
        truth.freeze(),
        "reopened final day must be bit-identical to the ground truth"
    );
    println!("spot-check passed: day {final_day} == ground truth");

    // --- Record medians --------------------------------------------------
    let suite = "graph/scale_1m";
    criterion::record_value(suite, "social_nodes", truth.num_social_nodes() as f64);
    criterion::record_value(suite, "social_links", truth.num_social_links() as f64);
    criterion::record_value(suite, "events_total", events_total as f64);
    criterion::record_value(suite, "synthesis_events_per_sec", events_per_sec);
    criterion::record_value(suite, "v1_equivalent_bytes", v1_equivalent as f64);
    criterion::record_value(suite, "v2_vault_bytes", v2_disk as f64);
    criterion::record_value(suite, "cold_open_full_ns", cold_open.as_nanos() as f64);
    if let Some(took) = delta_reconstruct {
        criterion::record_value(suite, "delta_chain_reconstruct_ns", took.as_nanos() as f64);
    }
    if let Some(rss) = peak_rss {
        criterion::record_value(suite, "peak_rss_bytes", rss as f64);
    }
    if let Ok(json) = std::env::var("SCALE_JSON") {
        criterion::write_json(&json).expect("write SCALE_JSON");
        println!("metrics written to {json}");
    }

    if !keep_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
