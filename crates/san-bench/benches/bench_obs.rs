//! Observability overhead harness: (1) how long one full Prometheus
//! text-exposition encode of the three-layer registry takes on a warm
//! server, and (2) what per-request tracing costs on the wire — the
//! counts-query RTT measured against two otherwise identical loopback
//! servers, tracing on vs off, sampled in interleaved batches so clock
//! drift hits both sides equally. The medians land in `BENCH_OBS.json`;
//! the acceptance gate holds the traced overhead under 5% of the
//! untraced RTT.
//!
//! The overhead estimator is the **minimum of per-batch medians**: a
//! batch median absorbs per-request jitter, and the min across batches
//! discards batches a scheduler spike landed on — what survives is the
//! noise-floor RTT, which still contains the (constant, additive)
//! tracing cost being measured.

use criterion::{black_box, criterion_group, Criterion};

/// Median of a sample set (destructive; empty → 0).
#[cfg(unix)]
fn median(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[cfg(unix)]
fn bench_obs(c: &mut Criterion) {
    use san_core::model::{SanModel, SanModelParams};
    use san_graph::store::SnapshotVault;
    use san_net::server::{NetConfig, NetServer};
    use san_net::{NetClient, Query};
    use san_serve::{ServeConfig, SnapshotServer};
    use std::time::Instant;

    let quick = std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1");
    let (batches, per_batch): (usize, u64) = if quick { (8, 50) } else { (20, 200) };

    // The same 10k-node/98-day fixture the net bench serves.
    let (tl, _) = SanModel::new(SanModelParams::paper_default(98, 102))
        .unwrap()
        .generate(9);
    let max_day = tl.max_day().unwrap();
    let dir = std::env::temp_dir().join(format!("san-bench-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut vault = SnapshotVault::create(&dir).expect("create bench vault");
    vault.save_timeline(&tl, 7).expect("persist timeline");

    // One worker per server: the RTT probe is a single closed-loop
    // client, and extra idle workers only add scheduler noise on the
    // small CI boxes this gate must hold on.
    let start = |trace: bool| -> NetServer {
        let snaps = SnapshotServer::open(&dir, ServeConfig::default()).expect("open vault");
        let net = NetConfig {
            workers: 1,
            max_inflight: 8,
            trace,
            ..NetConfig::default()
        };
        NetServer::serve(snaps, "127.0.0.1:0", net).expect("bind loopback")
    };
    let traced = start(true);
    let untraced = start(false);

    // Warm both servers (map the day, fill the latency histograms) so
    // the encode bench scrapes a registry with real content.
    let mut warm_traced = NetClient::connect(traced.addr()).expect("connect");
    let mut warm_untraced = NetClient::connect(untraced.addr()).expect("connect");
    for _ in 0..100 {
        warm_traced.query(max_day, Query::Counts).expect("warm");
        warm_untraced.query(max_day, Query::Counts).expect("warm");
    }

    // (1) Exposition encode: the full three-layer scrape, in-process —
    // what the admin listener and the stats query both pay per scrape.
    let scrape_len = traced.stats_text().len();
    let mut group = c.benchmark_group("obs/encode");
    group.sample_size(10);
    group.bench_function("prometheus_text", |b| {
        b.iter(|| black_box(traced.stats_text()));
    });
    group.finish();
    criterion::record_value("obs/encode", "scrape_bytes", scrape_len as f64);

    // (2) Traced-vs-untraced RTT, interleaved batches on one counts
    // query per request; each batch contributes its median, and the
    // min across batches is the reported RTT.
    let rtt_batch_median = |client: &mut NetClient| -> u64 {
        let mut samples: Vec<u64> = (0..per_batch)
            .map(|_| {
                let t0 = Instant::now();
                black_box(client.query(max_day, Query::Counts).expect("counts"));
                t0.elapsed().as_nanos() as u64
            })
            .collect();
        median(&mut samples)
    };
    let (mut on, mut off) = (u64::MAX, u64::MAX);
    for _ in 0..batches {
        on = on.min(rtt_batch_median(&mut warm_traced));
        off = off.min(rtt_batch_median(&mut warm_untraced));
    }
    let (p50_on, p50_off) = (on, off);
    // Signed percentage: negative means tracing measured *faster* than
    // untraced this run (pure scheduling noise — the real cost is a few
    // clock reads and one seqlock publish per request).
    let overhead_pct = (p50_on as f64 - p50_off as f64) / p50_off as f64 * 100.0;
    println!(
        "obs/trace_overhead: counts RTT p50 traced {p50_on} ns vs untraced {p50_off} ns ({overhead_pct:+.2}%)"
    );
    criterion::record_value("obs/trace_overhead", "traced_p50_ns", p50_on as f64);
    criterion::record_value("obs/trace_overhead", "untraced_p50_ns", p50_off as f64);
    criterion::record_value("obs/trace_overhead", "overhead_pct", overhead_pct);
    // The recorded (full-sample) run gates at 5%; the CRITERION_QUICK
    // smoke keeps a looser sanity bound — 8×50 samples on a shared CI
    // runner can't resolve a ~2% signal against scheduler noise.
    let gate_pct = if quick { 15.0 } else { 5.0 };
    assert!(
        overhead_pct < gate_pct,
        "tracing overhead {overhead_pct:.2}% breaches the {gate_pct}% acceptance gate"
    );
    // The traced server really did trace (and the untraced one didn't).
    assert!(
        traced.trace_ring().recorded() > 0,
        "traced ring stayed empty"
    );
    assert_eq!(untraced.trace_ring().recorded(), 0, "untraced ring filled");

    drop(warm_traced);
    drop(warm_untraced);
    traced.shutdown();
    untraced.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The TCP server rides the unix-only mmap serving stack; elsewhere the
/// harness still links and writes an empty registry.
#[cfg(not(unix))]
fn bench_obs(_c: &mut Criterion) {}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs
}
fn main() {
    benches();
    // Medians land at the repo root so recordings are versioned alongside
    // the code they measure.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_OBS.json");
    criterion::write_json(out).expect("write BENCH_OBS.json");
    println!("medians written to {out}");
}
