//! Criterion benchmarks for the measurement library, including the two
//! accuracy/latency trade-offs DESIGN.md calls out: exact vs Algorithm 2
//! clustering, and HyperANF register width.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use san_core::model::{SanModel, SanModelParams};
use san_graph::San;
use san_metrics::clustering::{approx_average_clustering_k, average_clustering_exact, NodeSet};
use san_metrics::hyperanf::social_effective_diameter;
use san_metrics::jdd::{social_assortativity, social_knn};
use san_metrics::reciprocity::global_reciprocity;
use san_stats::SplitRng;

fn test_san() -> San {
    SanModel::new(SanModelParams::paper_default(80, 40))
        .unwrap()
        .generate(7)
        .1
}

fn bench_clustering(c: &mut Criterion) {
    let san = test_san();
    let mut group = c.benchmark_group("metrics/clustering");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| black_box(average_clustering_exact(&san, NodeSet::Social)));
    });
    for &k in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("algorithm2", k), &k, |b, &k| {
            let mut rng = SplitRng::new(8);
            b.iter(|| {
                black_box(approx_average_clustering_k(
                    &san,
                    NodeSet::Social,
                    k,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();
}

fn bench_hyperanf(c: &mut Criterion) {
    let san = test_san();
    let mut group = c.benchmark_group("metrics/hyperanf");
    group.sample_size(10);
    for &b_param in &[4u8, 6, 8] {
        group.bench_with_input(
            BenchmarkId::new("effective_diameter_b", b_param),
            &b_param,
            |b, &bp| {
                b.iter(|| black_box(social_effective_diameter(&san, 0.9, bp, 9)));
            },
        );
    }
    group.finish();
}

fn bench_scalar_metrics(c: &mut Criterion) {
    let san = test_san();
    let mut group = c.benchmark_group("metrics/scalar");
    group.sample_size(10);
    group.bench_function("global_reciprocity", |b| {
        b.iter(|| black_box(global_reciprocity(&san)));
    });
    group.bench_function("social_knn", |b| {
        b.iter(|| black_box(social_knn(&san).len()));
    });
    group.bench_function("social_assortativity", |b| {
        b.iter(|| black_box(social_assortativity(&san)));
    });
    group.finish();
}

fn bench_degree_fitting(c: &mut Criterion) {
    let san = test_san();
    let degrees: Vec<u64> = san
        .social_nodes()
        .map(|u| san.out_degree(u) as u64)
        .collect();
    let mut group = c.benchmark_group("metrics/fitting");
    group.sample_size(10);
    group.bench_function("fit_degree_distribution", |b| {
        b.iter(|| black_box(san_stats::fit_degree_distribution(&degrees).unwrap().family));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_clustering, bench_hyperanf, bench_scalar_metrics, bench_degree_fitting
}
fn main() {
    benches();
    // Medians land at the repo root so recordings are versioned alongside
    // the code they measure (suite → metric → ns/bytes).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_METRICS.json");
    criterion::write_json(out).expect("write BENCH_METRICS.json");
    println!("medians written to {out}");
}
