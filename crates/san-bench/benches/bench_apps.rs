//! Criterion benchmarks for the application-fidelity pipelines (Fig. 19's
//! inner loops) and the end-to-end dataset generation + crawl.

use criterion::{black_box, criterion_group, Criterion};
use san_apps::anonymity::{timing_analysis_probability, AnonymityConfig};
use san_apps::sybil::{compromise_uniform, sybil_identities, SybilLimitConfig};
use san_core::model::{SanModel, SanModelParams};
use san_sim::GooglePlus;
use san_stats::SplitRng;

fn bench_sybil(c: &mut Criterion) {
    let (_, san) = SanModel::new(SanModelParams::paper_default(60, 40))
        .unwrap()
        .generate(21);
    let n = san.num_social_nodes();
    let mut group = c.benchmark_group("apps/sybil");
    group.sample_size(10);
    group.bench_function("sybil_identities", |b| {
        let mut rng = SplitRng::new(22);
        b.iter(|| {
            black_box(sybil_identities(
                &san,
                SybilLimitConfig::default(),
                n / 50,
                &mut rng,
            ))
        });
    });
    group.finish();
}

fn bench_anonymity(c: &mut Criterion) {
    let (_, san) = SanModel::new(SanModelParams::paper_default(60, 40))
        .unwrap()
        .generate(23);
    let n = san.num_social_nodes();
    let mut rng = SplitRng::new(24);
    let compromised = compromise_uniform(&san, n / 50, &mut rng);
    let mut group = c.benchmark_group("apps/anonymity");
    group.sample_size(10);
    group.bench_function("timing_analysis_20k_walks", |b| {
        let cfg = AnonymityConfig {
            degree_bound: 100,
            circuit_length: 6,
            samples: 20_000,
        };
        let mut rng = SplitRng::new(25);
        b.iter(|| {
            black_box(timing_analysis_probability(
                &san,
                cfg,
                &compromised,
                &mut rng,
            ))
        });
    });
    group.finish();
}

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/dataset");
    group.sample_size(10);
    group.bench_function("generate_scale10", |b| {
        let gen = GooglePlus::at_scale(10);
        b.iter(|| black_box(gen.generate(26).truth.num_social_links()));
    });
    group.bench_function("generate_and_crawl_scale10", |b| {
        let gen = GooglePlus::at_scale(10);
        b.iter(|| {
            let data = gen.generate(27);
            black_box(data.crawl_final().san.num_social_links())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sybil, bench_anonymity, bench_dataset
}
fn main() {
    benches();
    // Medians land at the repo root so recordings are versioned alongside
    // the code they measure (suite → metric → ns/bytes).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_APPS.json");
    criterion::write_json(out).expect("write BENCH_APPS.json");
    println!("medians written to {out}");
}
