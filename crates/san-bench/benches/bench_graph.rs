//! Criterion benchmarks for the SAN data-structure substrate: mutation
//! throughput and the neighbourhood queries every metric sits on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use san_core::model::{SanModel, SanModelParams};
use san_graph::{San, SocialId};
use san_stats::SplitRng;

fn build_random_san(n: u32, links_per_node: u32, seed: u64) -> San {
    let mut rng = SplitRng::new(seed);
    let mut san = San::new();
    for _ in 0..n {
        san.add_social_node();
    }
    for _ in 0..4 {
        san.add_attr_node(san_graph::AttrType::Employer);
    }
    for u in 0..n {
        for _ in 0..links_per_node {
            let v = rng.below(u64::from(n)) as u32;
            if v != u {
                san.add_social_link(SocialId(u), SocialId(v));
            }
        }
        if rng.chance(0.25) {
            san.add_attr_link(SocialId(u), san_graph::AttrId(rng.below(4) as u32));
        }
    }
    san
}

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/mutation");
    for &n in &[1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("build_random_san", n), &n, |b, &n| {
            b.iter(|| build_random_san(black_box(n), 8, 1));
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let san = build_random_san(10_000, 8, 2);
    let mut rng = SplitRng::new(3);
    let mut group = c.benchmark_group("graph/queries");
    group.bench_function("has_social_link", |b| {
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            let v = SocialId(rng.below(10_000) as u32);
            black_box(san.has_social_link(u, v))
        });
    });
    group.bench_function("social_neighbors", |b| {
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            black_box(san.social_neighbors(u).len())
        });
    });
    group.bench_function("common_social_neighbors", |b| {
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            let v = SocialId(rng.below(10_000) as u32);
            black_box(san.common_social_neighbors(u, v))
        });
    });
    group.bench_function("common_attrs", |b| {
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            let v = SocialId(rng.below(10_000) as u32);
            black_box(san.common_attrs(u, v))
        });
    });
    group.finish();
}

fn bench_timeline_replay(c: &mut Criterion) {
    let (tl, _) = SanModel::new(SanModelParams::paper_default(60, 30))
        .unwrap()
        .generate(4);
    let mut group = c.benchmark_group("graph/timeline");
    group.bench_function("final_snapshot_replay", |b| {
        b.iter(|| black_box(tl.final_snapshot().num_social_links()));
    });
    group.bench_function("day_counts", |b| {
        b.iter(|| black_box(tl.day_counts().len()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mutation, bench_queries, bench_timeline_replay
}
criterion_main!(benches);
