//! Criterion benchmarks for the SAN data-structure substrate: mutation
//! throughput and the neighbourhood queries every metric sits on.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use san_core::model::{SanModel, SanModelParams};
use san_graph::traverse::bfs_directed;
use san_graph::{CsrSan, San, SanRead, SanTimeline, ShardedCsrSan, SocialId};
use san_metrics::clustering::{average_clustering_exact, average_clustering_sharded, NodeSet};
use san_metrics::evolution::evolve_metric_parallel;
use san_metrics::hyperanf::{social_effective_diameter, social_effective_diameter_sharded};
use san_metrics::reciprocity::global_reciprocity;
use san_stats::SplitRng;
use std::sync::Arc;

fn build_random_san(n: u32, links_per_node: u32, seed: u64) -> San {
    let mut rng = SplitRng::new(seed);
    let mut san = San::new();
    for _ in 0..n {
        san.add_social_node();
    }
    for _ in 0..4 {
        san.add_attr_node(san_graph::AttrType::Employer);
    }
    for u in 0..n {
        for _ in 0..links_per_node {
            let v = rng.below(u64::from(n)) as u32;
            if v != u {
                san.add_social_link(SocialId(u), SocialId(v));
            }
        }
        if rng.chance(0.25) {
            san.add_attr_link(SocialId(u), san_graph::AttrId(rng.below(4) as u32));
        }
    }
    san
}

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/mutation");
    for &n in &[1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("build_random_san", n), &n, |b, &n| {
            b.iter(|| build_random_san(black_box(n), 8, 1));
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let san = build_random_san(10_000, 8, 2);
    let mut rng = SplitRng::new(3);
    let mut group = c.benchmark_group("graph/queries");
    group.bench_function("has_social_link", |b| {
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            let v = SocialId(rng.below(10_000) as u32);
            black_box(san.has_social_link(u, v))
        });
    });
    group.bench_function("social_neighbors", |b| {
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            black_box(san.social_neighbors(u).len())
        });
    });
    group.bench_function("common_social_neighbors", |b| {
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            let v = SocialId(rng.below(10_000) as u32);
            black_box(san.common_social_neighbors(u, v))
        });
    });
    group.bench_function("common_attrs", |b| {
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            let v = SocialId(rng.below(10_000) as u32);
            black_box(san.common_attrs(u, v))
        });
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// San vs CsrSan: the same generic read path over both representations, so
// the CSR win is measured, not asserted.
// ---------------------------------------------------------------------------

/// Full neighbourhood sweep: touch every out-, in- and undirected
/// neighbour of every node (the inner loop of clustering / knn / BFS).
fn neighborhood_sweep(g: &impl SanRead) -> usize {
    let mut acc = 0usize;
    for u in g.social_nodes() {
        for &v in g.out_neighbors(u) {
            acc = acc.wrapping_add(v.index());
        }
        for &v in g.in_neighbors(u) {
            acc = acc.wrapping_add(v.index());
        }
        for &v in g.social_neighbors(u).iter() {
            acc = acc.wrapping_add(v.index());
        }
    }
    acc
}

/// Random membership probes (the inner loop of reciprocity / triangle
/// counting).
fn membership_probes(g: &impl SanRead, probes: usize, rng: &mut SplitRng) -> usize {
    let n = g.num_social_nodes() as u64;
    let mut hits = 0;
    for _ in 0..probes {
        let u = SocialId(rng.below(n) as u32);
        let v = SocialId(rng.below(n) as u32);
        if g.has_social_link(u, v) {
            hits += 1;
        }
    }
    hits
}

fn bench_san_vs_csr(c: &mut Criterion) {
    let san = build_random_san(10_000, 8, 5);
    let csr: CsrSan = san.freeze();
    let sources: Vec<SocialId> = {
        let mut rng = SplitRng::new(6);
        (0..8).map(|_| SocialId(rng.below(10_000) as u32)).collect()
    };

    let mut group = c.benchmark_group("graph/san_vs_csr");
    group.sample_size(20);
    group.bench_function("neighborhood_sweep/san", |b| {
        b.iter(|| black_box(neighborhood_sweep(&san)));
    });
    group.bench_function("neighborhood_sweep/csr", |b| {
        b.iter(|| black_box(neighborhood_sweep(&csr)));
    });
    group.bench_function("membership_10k_probes/san", |b| {
        let mut rng = SplitRng::new(7);
        b.iter(|| black_box(membership_probes(&san, 10_000, &mut rng)));
    });
    group.bench_function("membership_10k_probes/csr", |b| {
        let mut rng = SplitRng::new(7);
        b.iter(|| black_box(membership_probes(&csr, 10_000, &mut rng)));
    });
    group.bench_function("bfs_directed/san", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for &src in &sources {
                reached += bfs_directed(&san, src).iter().flatten().count();
            }
            black_box(reached)
        });
    });
    group.bench_function("bfs_directed/csr", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for &src in &sources {
                reached += bfs_directed(&csr, src).iter().flatten().count();
            }
            black_box(reached)
        });
    });
    group.bench_function("common_social_neighbors/san", |b| {
        let mut rng = SplitRng::new(8);
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            let v = SocialId(rng.below(10_000) as u32);
            black_box(SanRead::common_social_neighbors(&san, u, v))
        });
    });
    group.bench_function("common_social_neighbors/csr", |b| {
        let mut rng = SplitRng::new(8);
        b.iter(|| {
            let u = SocialId(rng.below(10_000) as u32);
            let v = SocialId(rng.below(10_000) as u32);
            black_box(SanRead::common_social_neighbors(&csr, u, v))
        });
    });
    group.bench_function("freeze_10k_nodes", |b| {
        b.iter(|| black_box(san.freeze().heap_bytes()));
    });
    group.finish();
}

fn bench_timeline_replay(c: &mut Criterion) {
    let (tl, _) = SanModel::new(SanModelParams::paper_default(60, 30))
        .unwrap()
        .generate(4);
    let mut group = c.benchmark_group("graph/timeline");
    group.bench_function("final_snapshot_replay", |b| {
        b.iter(|| black_box(tl.final_snapshot().num_social_links()));
    });
    group.bench_function("day_counts", |b| {
        b.iter(|| black_box(tl.day_counts().len()));
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// Full-timeline evolution sweep on a ~10k-node, 98-day fixture: the access
// pattern behind every evolution figure. Three strategies over the same
// timeline and the same per-day metric (global reciprocity, an O(E) read):
//
//  * replay_per_day — `snapshot_csr(day)` for every day: replays the log
//    prefix from day 0 and re-freezes from scratch each time (quadratic);
//  * delta_freeze — `for_each_snapshot(1)`: each day's CSR is patched from
//    the previous day's (near-linear, zero snapshot clones);
//  * streamed_parallel — `evolve_metric_parallel(step=1, 4 threads)`:
//    delta-frozen snapshots streamed through a bounded channel to workers.
// ---------------------------------------------------------------------------

fn ten_k_timeline() -> SanTimeline {
    // 98 days × ~102 arrivals ≈ 10k social nodes.
    let (tl, _) = SanModel::new(SanModelParams::paper_default(98, 102))
        .unwrap()
        .generate(9);
    tl
}

fn bench_timeline_sweep(c: &mut Criterion) {
    let tl = ten_k_timeline();
    let max_day = tl.max_day().unwrap();
    let mut group = c.benchmark_group("graph/timeline_sweep");
    group.sample_size(10);
    group.bench_function("replay_per_day/step1", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for day in 0..=max_day {
                acc += global_reciprocity(&tl.snapshot_csr(day));
            }
            black_box(acc)
        });
    });
    group.bench_function("delta_freeze/step1", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            tl.for_each_snapshot(1, |_, snap| acc += global_reciprocity(snap));
            black_box(acc)
        });
    });
    group.bench_function("streamed_parallel/step1_4threads", |b| {
        b.iter(|| {
            let series =
                evolve_metric_parallel(&tl, "recip", 1, 4, |_, snap| global_reciprocity(snap));
            black_box(series.values.len())
        });
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// Intra-snapshot parallelism on the final day of the 10k-node/98-day
// fixture: the per-node sweeps that stop scaling once one thread must walk
// a whole snapshot. Single-threaded CsrSan baselines vs the shard-parallel
// drivers at K ∈ {1, 2, 4, 8} — K = 1 isolates the driver overhead, the
// larger K show the range-partitioned speedup (ROADMAP records the
// medians). Sharding the snapshot itself is O(K log V) binary searches and
// is included in the per-iteration cost.
// ---------------------------------------------------------------------------

fn bench_sharded_sweep(c: &mut Criterion) {
    let tl = ten_k_timeline();
    let final_day = Arc::new(tl.snapshot_csr(tl.max_day().unwrap()));
    let mut group = c.benchmark_group("graph/sharded_sweep");
    group.sample_size(10);
    group.bench_function("clustering/seq", |b| {
        b.iter(|| black_box(average_clustering_exact(&*final_day, NodeSet::Social)));
    });
    group.bench_function("hyperanf/seq", |b| {
        b.iter(|| black_box(social_effective_diameter(&*final_day, 0.9, 7, 11)));
    });
    for &k in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("clustering/sharded", k), &k, |b, &k| {
            b.iter(|| {
                let sharded = ShardedCsrSan::new(Arc::clone(&final_day), k);
                black_box(average_clustering_sharded(&sharded, NodeSet::Social))
            });
        });
        group.bench_with_input(BenchmarkId::new("hyperanf/sharded", k), &k, |b, &k| {
            b.iter(|| {
                let sharded = ShardedCsrSan::new(Arc::clone(&final_day), k);
                black_box(social_effective_diameter_sharded(&sharded, 0.9, 7, 11))
            });
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Columnar snapshot store on the 10k-node/98-day fixture: serialise /
// deserialise throughput of the final-day CsrSan (write + read MB/s over
// an in-memory buffer, so the disk is out of the picture), and the payoff
// it buys — a mid-timeline sweep resumed from a persisted vault day
// versus the same suffix swept by replaying from day 0. ROADMAP records
// the medians.
// ---------------------------------------------------------------------------

fn bench_vault_io(c: &mut Criterion) {
    use san_graph::store::SnapshotVault;
    use san_metrics::evolution::{evolve_metric, evolve_metric_from, SnapshotSource};

    let tl = ten_k_timeline();
    let final_day = tl.snapshot_csr(tl.max_day().unwrap());
    let bytes = final_day.to_store_bytes();
    let mib = bytes.len() as f64 / (1024.0 * 1024.0);

    // A vault persisting every 7th day, used by the resume benches below.
    let dir = std::env::temp_dir().join(format!("san-bench-vault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut vault = SnapshotVault::create(&dir).expect("create bench vault");
    vault.save_timeline(&tl, 7).expect("persist timeline");
    let resume_day = 49; // persisted: 49 % 7 == 0

    let mut group = c.benchmark_group("graph/vault_io");
    group.sample_size(10);
    group.bench_function(format!("write_{mib:.1}MiB"), |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(bytes.len());
            final_day.write_to(&mut out).expect("write");
            black_box(out.len())
        });
    });
    group.bench_function(format!("read_{mib:.1}MiB"), |b| {
        b.iter(|| black_box(CsrSan::from_store_bytes(&bytes).expect("read").heap_bytes()));
    });
    // The compressed v2 format on the same snapshot: encode/decode cost vs
    // the raw-column v1 path above, plus the size ratio it buys.
    let bytes_v2 = final_day.to_store_bytes_v2();
    let mib_v2 = bytes_v2.len() as f64 / (1024.0 * 1024.0);
    group.bench_function(format!("write_v2_{mib_v2:.1}MiB"), |b| {
        b.iter(|| black_box(final_day.to_store_bytes_v2().len()));
    });
    group.bench_function(format!("read_v2_{mib_v2:.1}MiB"), |b| {
        b.iter(|| {
            black_box(
                CsrSan::from_store_bytes(&bytes_v2)
                    .expect("read v2")
                    .heap_bytes(),
            )
        });
    });
    criterion::record_value("graph/vault_io", "snapshot_v1_bytes", bytes.len() as f64);
    criterion::record_value("graph/vault_io", "snapshot_v2_bytes", bytes_v2.len() as f64);
    // The suffix sweep [49, 98], step 1, global reciprocity per day.
    // Baseline: the no-vault fallback (delta-patch days 0..=98, withhold
    // the prefix — an empty vault source does exactly that, so the two
    // sides run the same driver and evaluate the same metric calls).
    // Contrast: resume loads day 49 from disk and patches only 50..=98.
    let empty_dir = dir.join("empty");
    let empty_vault = SnapshotVault::create(&empty_dir).expect("create empty vault");
    group.bench_function("suffix_sweep/replay_from_day0", |b| {
        b.iter(|| {
            let series = evolve_metric_from(
                SnapshotSource::Vault {
                    timeline: &tl,
                    vault: &empty_vault,
                    start: resume_day,
                },
                "recip",
                1,
                |_, snap| global_reciprocity(snap),
            )
            .expect("replay sweep");
            black_box(series.values.len())
        });
    });
    // And the conventional full sweep for scale (every day gets the
    // metric, nothing withheld).
    group.bench_function("full_sweep/replay_from_day0", |b| {
        b.iter(|| {
            let series = evolve_metric(&tl, "recip", 1, |_, snap| global_reciprocity(snap));
            black_box(series.values.len())
        });
    });
    group.bench_function("suffix_sweep/resume_from_vault", |b| {
        b.iter(|| {
            let series = evolve_metric_from(
                SnapshotSource::Vault {
                    timeline: &tl,
                    vault: &vault,
                    start: resume_day,
                },
                "recip",
                1,
                |_, snap| global_reciprocity(snap),
            )
            .expect("vault sweep");
            black_box(series.values.len())
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The serving layer on the 10k-node/98-day fixture: mmap cold-open
// (mmap + full validation) vs a SnapshotServer cache hit (Arc clone) vs
// the eager read_from load; a full exact-clustering sweep over the mapped
// view vs the owned CsrSan (the zero-copy read path must stay within
// ~1.3× of owned — in practice it is identical code over identical
// layouts); and a mixed-day query stream through the for_each_query
// thread pool. ROADMAP records the medians.
// ---------------------------------------------------------------------------

#[cfg(unix)]
fn bench_mmap_serve(c: &mut Criterion) {
    use san_graph::mmap::MappedSnapshot;
    use san_graph::store::SnapshotVault;
    use san_serve::{ServeConfig, SnapshotServer};

    let tl = ten_k_timeline();
    let final_day = tl.max_day().unwrap();
    let owned = tl.snapshot_csr(final_day);

    let dir = std::env::temp_dir().join(format!("san-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut vault = SnapshotVault::create(&dir).expect("create bench vault");
    vault.save_timeline(&tl, 7).expect("persist timeline");
    let final_path = vault.day_path(final_day);

    let server = SnapshotServer::open(&dir, ServeConfig::default()).expect("open server");
    // Prime the cache so `get` below measures the hit path.
    server.get(final_day).expect("prime").expect("served");
    let mapped = MappedSnapshot::open(&final_path).expect("map final day");

    let mut group = c.benchmark_group("graph/mmap_serve");
    group.sample_size(10);
    group.bench_function("cold_open_validate", |b| {
        b.iter(|| {
            let m = MappedSnapshot::open(&final_path).expect("open");
            black_box(m.mapped_bytes())
        });
    });
    group.bench_function("eager_load_for_scale", |b| {
        b.iter(|| {
            let loaded = vault.load_day(final_day).expect("load");
            black_box(loaded.heap_bytes())
        });
    });
    group.bench_function("server_get_hit", |b| {
        b.iter(|| {
            let handle = server.get(final_day).expect("get").expect("served");
            black_box(handle.day())
        });
    });
    group.bench_function("clustering_full_sweep/owned", |b| {
        b.iter(|| black_box(average_clustering_exact(&owned, NodeSet::Social)));
    });
    group.bench_function("clustering_full_sweep/mapped", |b| {
        let view = mapped.view();
        b.iter(|| black_box(average_clustering_exact(&view, NodeSet::Social)));
    });
    // A 256-query mixed-day stream, 4 workers: each query probes the
    // degrees of 64 random nodes on its day — the serving cost (cache +
    // view construction) dominates, not the metric.
    let mut rng = SplitRng::new(12);
    let queries: Vec<(u32, u64)> = (0..256)
        .map(|_| {
            (
                rng.below(u64::from(final_day) + 1) as u32,
                rng.below(u64::MAX),
            )
        })
        .collect();
    group.bench_function("mixed_query_stream/256q_4threads", |b| {
        b.iter(|| {
            let outcomes = server.for_each_query(4, &queries, |&seed, _, view| {
                let mut rng = SplitRng::new(seed);
                let n = view.num_social_nodes() as u64;
                let mut acc = 0usize;
                for _ in 0..64 {
                    acc += view.out_degree(SocialId(rng.below(n) as u32));
                }
                acc
            });
            black_box(outcomes.len())
        });
    });
    // Thundering herd: 8 threads hit one *cold* day simultaneously on a
    // fresh server. With single-flight (SAN-001 fix) the herd performs
    // exactly one map+validate — `total_maps` printed below confirms it —
    // so the measured time is one cold open plus wake-up costs, not 8
    // serialized-by-the-page-cache opens' worth of redundant work.
    group.bench_function("thundering_herd/8threads_cold", |b| {
        let mut total_maps = 0u64;
        let mut total_iters = 0u64;
        b.iter(|| {
            let server =
                SnapshotServer::open(&dir, ServeConfig::default()).expect("open herd server");
            let start = std::sync::Barrier::new(8);
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    let server = &server;
                    let start = &start;
                    scope.spawn(move || {
                        start.wait();
                        let handle = server.get(final_day).expect("get").expect("served");
                        black_box(handle.day());
                    });
                }
            });
            total_maps += server.metrics().io().reads();
            total_iters += 1;
            black_box(server.metrics().dedup_waits())
        });
        eprintln!(
            "thundering_herd/8threads_cold: {total_maps} maps over {total_iters} herds \
             (single-flight holds at 1 map/herd)"
        );
        assert_eq!(total_maps, total_iters, "one map per herd");
    });
    group.finish();
    drop(mapped);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The serving stack is mmap-backed and therefore unix-only; elsewhere
/// the group is an empty stand-in so the harness still links.
#[cfg(not(unix))]
fn bench_mmap_serve(_c: &mut Criterion) {}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mutation, bench_queries, bench_san_vs_csr, bench_timeline_replay,
        bench_timeline_sweep, bench_sharded_sweep, bench_vault_io, bench_mmap_serve
}
fn main() {
    benches();
    // Medians land at the repo root so recordings are versioned alongside
    // the code they measure (suite → metric → ns/bytes).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_GRAPH.json");
    criterion::write_json(out).expect("write BENCH_GRAPH.json");
    println!("medians written to {out}");
}
