//! Load harness for the `san-net` TCP front-end over loopback: a
//! closed-loop and an open-loop replay of the mixed query stream
//! against a real `NetServer` (thread-per-core pool over a
//! `SnapshotServer` on the 10k-node/98-day fixture), plus a deliberate
//! overload run that must shed as typed `Busy`. The p50/p99/p999 of
//! each run land in `BENCH_NET.json` through the criterion shim
//! registry; ROADMAP records the medians.

use criterion::{black_box, criterion_group, Criterion};

#[cfg(unix)]
fn bench_net(c: &mut Criterion) {
    use san_bench::load::{closed_loop, open_loop, StreamSpec};
    use san_core::model::{SanModel, SanModelParams};
    use san_graph::store::SnapshotVault;
    use san_graph::SanRead;
    use san_net::{NetConfig, NetServer, Query};
    use san_serve::{ServeConfig, SnapshotServer};
    use std::time::Duration;

    let quick = std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1");
    let per_client: u64 = if quick { 200 } else { 2_000 };

    // 98 days × ~102 arrivals ≈ 10k social nodes, every 7th day persisted
    // — the same fixture the mmap/serve benches use.
    let (tl, _) = SanModel::new(SanModelParams::paper_default(98, 102))
        .unwrap()
        .generate(9);
    let max_day = tl.max_day().unwrap();
    let dir = std::env::temp_dir().join(format!("san-bench-net-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut vault = SnapshotVault::create(&dir).expect("create bench vault");
    vault.save_timeline(&tl, 7).expect("persist timeline");

    // Node ids up to the mid-timeline population: early days answer some
    // typed NodeOutOfRange (counted, not timed out), later days mostly Ok.
    let spec = StreamSpec {
        seed: 17,
        max_day,
        max_node: tl.snapshot_csr(49).num_social_nodes() as u32,
    };

    // Thread-per-core is the production default, but the harness pins
    // explicit pool sizes so a 4-client fleet is actually served
    // concurrently even on a single-core CI box.
    let server = {
        let snaps = SnapshotServer::open(&dir, ServeConfig::default()).expect("open vault");
        let net = NetConfig {
            workers: 4,
            max_inflight: 16,
            ..NetConfig::default()
        };
        NetServer::serve(snaps, "127.0.0.1:0", net).expect("bind loopback")
    };
    let addr = server.addr();

    // Single-connection round-trip medians for three representative
    // queries (point lookup → page → whole-graph metric).
    let mut group = c.benchmark_group("net/rtt");
    group.sample_size(10);
    let mut client = san_net::NetClient::connect(addr).expect("connect");
    group.bench_function("counts", |b| {
        b.iter(|| black_box(client.query(max_day, Query::Counts).expect("counts")));
    });
    group.bench_function("out_neighbors_64", |b| {
        b.iter(|| {
            let q = Query::OutNeighbors {
                u: 1,
                offset: 0,
                limit: 64,
            };
            black_box(client.query(max_day, q).expect("neighbors"))
        });
    });
    group.bench_function("local_clustering", |b| {
        b.iter(|| {
            let q = Query::LocalClustering { u: 1 };
            black_box(client.query(max_day, q).expect("clustering"))
        });
    });
    group.finish();
    drop(client);

    // Closed loop: 4 clients, back-to-back requests — best-case RTT at
    // fixed concurrency; throughput floats.
    let report = closed_loop(addr, 4, per_client, spec);
    assert_eq!(report.transport_errors, 0, "closed loop lost a client");
    assert!(report.served > 0, "closed loop served nothing");
    println!(
        "net/closed_loop: {} reqs, {:.0} req/s, p50 {} ns, p99 {} ns, p999 {} ns",
        report.sent,
        report.throughput_rps(),
        report.p50_nanos(),
        report.p99_nanos(),
        report.p999_nanos()
    );
    criterion::record_value("net/closed_loop", "p50_ns", report.p50_nanos() as f64);
    criterion::record_value("net/closed_loop", "p99_ns", report.p99_nanos() as f64);
    criterion::record_value("net/closed_loop", "p999_ns", report.p999_nanos() as f64);
    criterion::record_value("net/closed_loop", "throughput_rps", report.throughput_rps());
    criterion::record_value("net/closed_loop", "served", report.served as f64);
    criterion::record_value("net/closed_loop", "busy", report.busy as f64);

    // Open loop: same 4 clients on a fixed 500 µs cadence each (≈8k
    // offered req/s); latency is schedule-anchored, so queueing counts.
    let interval = Duration::from_micros(500);
    let report = open_loop(addr, 4, per_client, interval, spec);
    assert_eq!(report.transport_errors, 0, "open loop lost a client");
    assert!(report.served > 0, "open loop served nothing");
    let offered_rps = 4.0 / interval.as_secs_f64();
    println!(
        "net/open_loop: {} reqs offered at {:.0} req/s, p50 {} ns, p99 {} ns, p999 {} ns",
        report.sent,
        offered_rps,
        report.p50_nanos(),
        report.p99_nanos(),
        report.p999_nanos()
    );
    criterion::record_value("net/open_loop", "p50_ns", report.p50_nanos() as f64);
    criterion::record_value("net/open_loop", "p99_ns", report.p99_nanos() as f64);
    criterion::record_value("net/open_loop", "p999_ns", report.p999_nanos() as f64);
    criterion::record_value("net/open_loop", "offered_rps", offered_rps);
    criterion::record_value("net/open_loop", "served", report.served as f64);
    server.shutdown();

    // Deliberate overload: a one-request in-flight cap against 8
    // closed-loop clients — admission control must shed as typed `Busy`
    // (never a hang; transport_errors stays 0), while the survivors
    // still get served.
    let overloaded = {
        let snaps = SnapshotServer::open(&dir, ServeConfig::default()).expect("open vault");
        let net = NetConfig {
            workers: 8,
            max_inflight: 1,
            ..NetConfig::default()
        };
        NetServer::serve(snaps, "127.0.0.1:0", net).expect("bind loopback")
    };
    let report = closed_loop(overloaded.addr(), 8, per_client / 2, spec);
    assert_eq!(report.transport_errors, 0, "overload hung a client");
    assert!(report.busy > 0, "overload never answered Busy");
    assert!(report.served > 0, "overload starved everyone");
    let busy_share = report.busy as f64 / report.sent as f64;
    println!(
        "net/overload: {} reqs, busy share {:.3}, served {}",
        report.sent, busy_share, report.served
    );
    criterion::record_value("net/overload", "busy", report.busy as f64);
    criterion::record_value("net/overload", "served", report.served as f64);
    criterion::record_value("net/overload", "busy_share_pct", busy_share * 100.0);
    overloaded.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

/// The TCP server rides the unix-only mmap serving stack; elsewhere the
/// harness still links and writes an empty registry.
#[cfg(not(unix))]
fn bench_net(_c: &mut Criterion) {}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_net
}
fn main() {
    benches();
    // Medians land at the repo root so recordings are versioned alongside
    // the code they measure (suite → metric → ns / req/s / counts).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_NET.json");
    criterion::write_json(out).expect("write BENCH_NET.json");
    println!("medians written to {out}");
}
