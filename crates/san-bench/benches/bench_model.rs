//! Criterion benchmarks for the generative models: generation throughput,
//! the exact-vs-fast LAPA sampling trade-off (§7), attachment likelihood
//! evaluation (Fig. 15's inner loop), and the lifetime-distribution
//! ablation.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use san_core::attach::AttachModel;
use san_core::model::{LifetimeDist, SanModel, SanModelParams};
use san_graph::{San, SocialId};
use san_stats::SplitRng;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/generate");
    group.sample_size(10);
    for &per_day in &[10u32, 40] {
        group.bench_with_input(
            BenchmarkId::new("paper_model", per_day),
            &per_day,
            |b, &pd| {
                let model = SanModel::new(SanModelParams::paper_default(60, pd)).unwrap();
                b.iter(|| black_box(model.generate(11).1.num_social_links()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("zhel_baseline", per_day),
            &per_day,
            |b, &pd| {
                let model = SanModel::new(SanModelParams::zhel_baseline(60, pd)).unwrap();
                b.iter(|| black_box(model.generate(11).1.num_social_links()));
            },
        );
    }
    // Ablation: exponential vs truncated-normal lifetimes (same scale).
    group.bench_function("lifetime_truncnormal", |b| {
        let model = SanModel::new(SanModelParams::paper_default(60, 20)).unwrap();
        b.iter(|| black_box(model.generate(12).1.num_social_links()));
    });
    group.bench_function("lifetime_exponential", |b| {
        let mut p = SanModelParams::paper_default(60, 20);
        p.lifetime = LifetimeDist::Exponential { mean: 8.0 };
        let model = SanModel::new(p).unwrap();
        b.iter(|| black_box(model.generate(12).1.num_social_links()));
    });
    group.finish();
}

fn bench_lapa_sampling(c: &mut Criterion) {
    // Exact O(n) scan vs the O(|Γa|) mixture sampler on the same network.
    let (_, san) = SanModel::new(SanModelParams::paper_default(60, 40))
        .unwrap()
        .generate(13);
    let model = AttachModel::Lapa {
        alpha: 1.0,
        beta: 20.0,
    };
    // Rebuild a sampler over the final network.
    let mut sampler = san_core::attach::LapaSampler::new(20.0).unwrap();
    let mut shadow = San::new();
    for u in san.social_nodes() {
        shadow.add_social_node();
        sampler.on_social_node(u);
    }
    for a in san.attr_nodes() {
        shadow.add_attr_node(san.attr_type(a));
        sampler.on_attr_node();
    }
    for (u, a) in san.attr_links() {
        shadow.add_attr_link(u, a);
        sampler.on_attr_link(&shadow, u, a);
    }
    for (u, v) in san.social_links() {
        shadow.add_social_link(u, v);
        sampler.on_social_link(&shadow, v);
    }
    let n = san.num_social_nodes() as u64;
    let mut group = c.benchmark_group("model/lapa_sampling");
    group.bench_function("exact_linear_scan", |b| {
        let mut rng = SplitRng::new(14);
        b.iter(|| {
            let u = SocialId(rng.below(n) as u32);
            black_box(model.sample_exact(&san, u, &mut rng))
        });
    });
    group.bench_function("fast_mixture_sampler", |b| {
        let mut rng = SplitRng::new(14);
        b.iter(|| {
            let u = SocialId(rng.below(n) as u32);
            black_box(sampler.sample(&san, u, &mut rng))
        });
    });
    group.finish();
}

fn bench_likelihood(c: &mut Criterion) {
    let (tl, _) = SanModel::new(SanModelParams::paper_default(40, 20))
        .unwrap()
        .generate(15);
    let mut group = c.benchmark_group("model/likelihood");
    group.sample_size(10);
    group.bench_function("pa", |b| {
        b.iter(|| black_box(AttachModel::Pa { alpha: 1.0 }.log_likelihood(&tl).unwrap()));
    });
    group.bench_function("lapa", |b| {
        b.iter(|| {
            black_box(
                AttachModel::Lapa {
                    alpha: 1.0,
                    beta: 20.0,
                }
                .log_likelihood(&tl)
                .unwrap(),
            )
        });
    });
    group.bench_function("papa", |b| {
        b.iter(|| {
            black_box(
                AttachModel::Papa {
                    alpha: 1.0,
                    beta: 2.0,
                }
                .log_likelihood(&tl)
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_lapa_sampling, bench_likelihood
}
fn main() {
    benches();
    // Medians land at the repo root so recordings are versioned alongside
    // the code they measure (suite → metric → ns/bytes).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_MODEL.json");
    criterion::write_json(out).expect("write BENCH_MODEL.json");
    println!("medians written to {out}");
}
