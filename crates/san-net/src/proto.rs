//! The `SANW` wire protocol: length-prefixed request/response frames in
//! the house little-endian framing style of `SANCSRBF`.
//!
//! See the crate-level docs for the byte-exact frame layout diagrams and
//! the versioning policy. This module owns the types ([`Request`],
//! [`Response`], [`Query`], [`QueryResult`], [`ErrorCode`]) and the
//! codec: [`Request::encode`]/[`Request::decode`] and
//! [`Response::encode`]/[`Response::decode`] for in-memory frames, plus
//! `read_from`/`write_to` for blocking streams.
//!
//! The decoder is an **untrusted-bytes boundary** (any process can
//! connect and send anything), so it follows the same discipline as the
//! snapshot store:
//!
//! * *bounds before bytes* — declared lengths are checked against the
//!   protocol maxima **before** any buffer is sized from them;
//! * every failure is a typed [`NetError`], never a panic;
//! * header fields are validated in offset order, so the corruption
//!   matrix can pin down exactly which check rejects each crafted frame.

use san_graph::wire::{WireReader, WireTruncated, WireWriter};
use std::io::{self, Read, Write};

/// Frame magic: every request and response starts with these 4 bytes.
pub const NET_MAGIC: [u8; 4] = *b"SANW";

/// Protocol version carried by every frame. Single-valued: peers reject
/// anything else (see the crate docs' versioning policy). v2 added the
/// `stats` query (id 7) and its text payload — a new query id is a new
/// version, per policy.
pub const NET_VERSION: u16 = 2;

/// Fixed request header size (magic → params length), bytes.
pub const REQUEST_HEADER_BYTES: usize = 16;

/// Fixed response header size (magic → payload length), bytes.
pub const RESPONSE_HEADER_BYTES: usize = 20;

/// Hard bound on a request's declared `params_len`. The largest v2
/// params block is 12 bytes; the headroom is for future versions, and
/// the bound is what keeps a hostile length prefix from sizing a
/// buffer.
pub const MAX_PARAMS_BYTES: u32 = 64;

/// Largest neighbour page a single [`Query::OutNeighbors`] may request
/// or a [`QueryResult::Neighbors`] may carry.
pub const MAX_NEIGHBOR_PAGE: u32 = 4096;

/// Hard bound on a non-stats response's declared `payload_len`: the
/// full-page neighbour payload (`8 + 4 ×` [`MAX_NEIGHBOR_PAGE`]). The
/// `stats` query (id 7) alone is allowed the larger
/// [`MAX_STATS_BYTES`]-based bound — the response header carries the
/// query id *before* the payload length, so the per-query bound is
/// known by the time the length is validated.
pub const MAX_PAYLOAD_BYTES: u32 = 8 + 4 * MAX_NEIGHBOR_PAGE;

/// Hard bound on the UTF-8 text a [`QueryResult::Stats`] payload may
/// carry (the metrics exposition grows with registered series, not with
/// client input; 1 MiB is generous headroom). The stats payload itself
/// is `4 + len` bytes (`u32` length prefix + text).
pub const MAX_STATS_BYTES: u32 = 1 << 20;

/// Response-payload bound for `query_id` (see [`MAX_PAYLOAD_BYTES`]
/// and [`MAX_STATS_BYTES`]).
fn max_payload_for(query_id: u16) -> u32 {
    if query_id == 7 {
        4 + MAX_STATS_BYTES
    } else {
        MAX_PAYLOAD_BYTES
    }
}

/// Largest possible encoded request frame.
pub const MAX_REQUEST_FRAME_BYTES: usize = REQUEST_HEADER_BYTES + MAX_PARAMS_BYTES as usize;

/// Largest possible encoded response frame (a full stats payload).
pub const MAX_RESPONSE_FRAME_BYTES: usize = RESPONSE_HEADER_BYTES + 4 + MAX_STATS_BYTES as usize;

/// Highest day a request may name. Timelines are day-indexed from 0 and
/// the paper's crawl spans months, so 2²⁰ days (~2870 years) is pure
/// headroom; the bound exists so a hostile `day` cannot widen any
/// server-side arithmetic.
pub const MAX_DAY: u32 = 1 << 20;

/// Typed decode/transport failure. Every malformed frame maps to
/// exactly one variant — the corruption matrix
/// (`tests/proto_corruption.rs`) pins each crafted mutation to its
/// variant, and nothing in this module panics on wire input.
#[derive(Debug)]
pub enum NetError {
    /// The frame ended inside `section`.
    Truncated {
        /// Which field or section ran dry.
        section: &'static str,
    },
    /// The first 4 bytes were not [`NET_MAGIC`].
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The version word was not [`NET_VERSION`].
    UnsupportedVersion {
        /// The version actually found.
        found: u16,
    },
    /// The query id names no known query.
    UnknownQuery {
        /// The id actually found.
        id: u16,
    },
    /// The response status names neither success nor a known
    /// [`ErrorCode`].
    UnknownStatus {
        /// The status word actually found.
        code: u16,
    },
    /// A declared length prefix exceeds the protocol bound. Raised
    /// *before* any buffer is sized from the length.
    FrameTooLarge {
        /// The declared length.
        declared: u32,
        /// The protocol bound it exceeds.
        max: u32,
    },
    /// The requested day exceeds [`MAX_DAY`].
    DayOutOfRange {
        /// The day actually found.
        day: u32,
    },
    /// The reserved header word was not zero (required so a future
    /// version can claim it unambiguously).
    ReservedNonZero {
        /// The word actually found.
        found: u16,
    },
    /// Params or payload bytes are malformed for the frame's query.
    BadParams {
        /// The query (or section) whose bytes are malformed.
        query: &'static str,
        /// What was wrong.
        reason: &'static str,
    },
    /// Transport-level IO failure (not a protocol violation).
    Io(io::Error),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Truncated { section } => write!(f, "frame truncated in {section}"),
            NetError::BadMagic { found } => write!(f, "bad frame magic {found:?}"),
            NetError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (want {NET_VERSION})"
                )
            }
            NetError::UnknownQuery { id } => write!(f, "unknown query id {id}"),
            NetError::UnknownStatus { code } => write!(f, "unknown response status {code}"),
            NetError::FrameTooLarge { declared, max } => {
                write!(f, "declared length {declared} exceeds protocol bound {max}")
            }
            NetError::DayOutOfRange { day } => {
                write!(f, "day {day} exceeds protocol bound {MAX_DAY}")
            }
            NetError::ReservedNonZero { found } => {
                write!(f, "reserved header word is {found:#06x}, must be zero")
            }
            NetError::BadParams { query, reason } => {
                write!(f, "malformed {query} bytes: {reason}")
            }
            NetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<WireTruncated> for NetError {
    fn from(e: WireTruncated) -> NetError {
        NetError::Truncated { section: e.section }
    }
}

/// One read-only query against a served day. Ids are the wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Node/link counts of the snapshot — id 0, no params.
    Counts,
    /// Out/in/attribute degree of one social node — id 1.
    Degrees {
        /// The social node.
        u: u32,
    },
    /// One page of a node's out-neighbour row — id 2. `limit` is capped
    /// at [`MAX_NEIGHBOR_PAGE`].
    OutNeighbors {
        /// The social node.
        u: u32,
        /// Row offset the page starts at.
        offset: u32,
        /// Maximum ids returned (`≤` [`MAX_NEIGHBOR_PAGE`]).
        limit: u32,
    },
    /// Directed social-link membership — id 3.
    HasLink {
        /// Link source.
        src: u32,
        /// Link destination.
        dst: u32,
    },
    /// `|Γs(u) ∩ Γs(v)|` over out-neighbourhoods — id 4.
    CommonNeighbors {
        /// First node.
        u: u32,
        /// Second node.
        v: u32,
    },
    /// Global link reciprocity of the snapshot (an O(E) metric) — id 5,
    /// no params.
    Reciprocity,
    /// Local clustering coefficient of one social node — id 6.
    LocalClustering {
        /// The social node.
        u: u32,
    },
    /// The server's metrics snapshot as Prometheus text exposition —
    /// id 7 (v2), no params. The `day` field is ignored; `day_served`
    /// echoes 0.
    Stats,
}

impl Query {
    /// The wire query id.
    pub fn id(&self) -> u16 {
        match self {
            Query::Counts => 0,
            Query::Degrees { .. } => 1,
            Query::OutNeighbors { .. } => 2,
            Query::HasLink { .. } => 3,
            Query::CommonNeighbors { .. } => 4,
            Query::Reciprocity => 5,
            Query::LocalClustering { .. } => 6,
            Query::Stats => 7,
        }
    }

    /// Human-readable query name (error messages, bench labels).
    pub fn name(&self) -> &'static str {
        query_name(self.id())
    }

    /// Exact params-block size for a query id, or `None` for an unknown
    /// id.
    fn params_len_for(id: u16) -> Option<u32> {
        match id {
            0 | 5 | 7 => Some(0),
            1 | 6 => Some(4),
            3 | 4 => Some(8),
            2 => Some(12),
            _ => None,
        }
    }
}

fn query_name(id: u16) -> &'static str {
    match id {
        0 => "counts",
        1 => "degrees",
        2 => "out_neighbors",
        3 => "has_link",
        4 => "common_neighbors",
        5 => "reciprocity",
        6 => "local_clustering",
        7 => "stats",
        _ => "unknown",
    }
}

/// Typed error a server answers with instead of a result. The wire
/// status word is `0` for success and the discriminant below otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Admission control rejected the request (worker pool, in-flight
    /// cap, or resident-byte budget) — retry later.
    Busy = 1,
    /// No persisted day exists at or before the requested day.
    NoSnapshot = 2,
    /// A node id in the params exceeds the served snapshot.
    NodeOutOfRange = 3,
    /// The server is draining for shutdown.
    ShuttingDown = 4,
    /// Mapping/validating the snapshot failed server-side.
    StoreFailed = 5,
    /// The request frame itself was malformed (best-effort reply before
    /// the server closes the now-unsynchronised connection).
    BadRequest = 6,
}

impl ErrorCode {
    fn from_status(code: u16) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::Busy),
            2 => Some(ErrorCode::NoSnapshot),
            3 => Some(ErrorCode::NodeOutOfRange),
            4 => Some(ErrorCode::ShuttingDown),
            5 => Some(ErrorCode::StoreFailed),
            6 => Some(ErrorCode::BadRequest),
            _ => None,
        }
    }
}

/// One request frame: a day plus a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The day asked for (served nearest-at-or-before). Must be
    /// `≤` [`MAX_DAY`].
    pub day: u32,
    /// The query to run.
    pub query: Query,
}

/// Validated request header fields (internal decode intermediary).
struct RequestHeader {
    query_id: u16,
    day: u32,
    params_len: u32,
}

/// Parses + validates a request header in offset order: magic →
/// version → query id → day → params length (bound, then exact match).
fn parse_request_header(r: &mut WireReader<'_>) -> Result<RequestHeader, NetError> {
    let magic: [u8; 4] = r.take_array("request magic")?;
    if magic != NET_MAGIC {
        return Err(NetError::BadMagic { found: magic });
    }
    let version = r.take_u16("request version")?;
    if version != NET_VERSION {
        return Err(NetError::UnsupportedVersion { found: version });
    }
    let query_id = r.take_u16("request query id")?;
    let Some(expected) = Query::params_len_for(query_id) else {
        return Err(NetError::UnknownQuery { id: query_id });
    };
    let day = r.take_u32("request day")?;
    if day > MAX_DAY {
        return Err(NetError::DayOutOfRange { day });
    }
    let params_len = r.take_u32("request params length")?;
    if params_len > MAX_PARAMS_BYTES {
        return Err(NetError::FrameTooLarge {
            declared: params_len,
            max: MAX_PARAMS_BYTES,
        });
    }
    if params_len != expected {
        return Err(NetError::BadParams {
            query: query_name(query_id),
            reason: "params length does not match the query id",
        });
    }
    Ok(RequestHeader {
        query_id,
        day,
        params_len,
    })
}

impl Request {
    /// Encodes the frame (header + params).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(MAX_REQUEST_FRAME_BYTES);
        w.put_bytes(&NET_MAGIC);
        w.put_u16(NET_VERSION);
        w.put_u16(self.query.id());
        w.put_u32(self.day);
        match self.query {
            Query::Counts | Query::Reciprocity | Query::Stats => w.put_u32(0),
            Query::Degrees { u } | Query::LocalClustering { u } => {
                w.put_u32(4);
                w.put_u32(u);
            }
            Query::HasLink { src: a, dst: b } | Query::CommonNeighbors { u: a, v: b } => {
                w.put_u32(8);
                w.put_u32(a);
                w.put_u32(b);
            }
            Query::OutNeighbors { u, offset, limit } => {
                w.put_u32(12);
                w.put_u32(u);
                w.put_u32(offset);
                w.put_u32(limit);
            }
        }
        w.finish()
    }

    /// Decodes one frame from the front of `bytes`, returning the
    /// request and the number of bytes consumed (trailing bytes are the
    /// next frame's business). Never panics; never reads past the frame.
    pub fn decode(bytes: &[u8]) -> Result<(Request, usize), NetError> {
        let mut r = WireReader::new(bytes);
        let header = parse_request_header(&mut r)?;
        let params = r.take_bytes(header.params_len as usize, "request params")?;
        let query = parse_params(header.query_id, params)?;
        Ok((
            Request {
                day: header.day,
                query,
            },
            r.consumed(),
        ))
    }

    /// Validates a request header (first [`REQUEST_HEADER_BYTES`]
    /// bytes) and returns the params-block length that follows it — the
    /// piecewise entry point for servers reading header and params
    /// separately. *Bounds before bytes*: no params buffer should be
    /// sized until this passes.
    pub fn params_len(header: &[u8]) -> Result<usize, NetError> {
        let mut r = WireReader::new(header);
        Ok(parse_request_header(&mut r)?.params_len as usize)
    }

    /// Reads one frame from a blocking stream. `Ok(None)` is a clean
    /// close (EOF before the first header byte); EOF anywhere later is
    /// [`NetError::Truncated`]. The params buffer is sized only *after*
    /// the header's declared length passes its bound.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Request>, NetError> {
        let mut header = [0u8; REQUEST_HEADER_BYTES];
        if !read_full(r, &mut header, "request header")? {
            return Ok(None);
        }
        let mut reader = WireReader::new(&header);
        let parsed = parse_request_header(&mut reader)?;
        let mut params = vec![0u8; parsed.params_len as usize];
        if !read_full(r, &mut params, "request params")? {
            return Err(NetError::Truncated {
                section: "request params",
            });
        }
        let query = parse_params(parsed.query_id, &params)?;
        Ok(Some(Request {
            day: parsed.day,
            query,
        }))
    }

    /// Writes the frame to a blocking stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }
}

/// Parses a params block whose length already matched the query id.
fn parse_params(query_id: u16, params: &[u8]) -> Result<Query, NetError> {
    let mut r = WireReader::new(params);
    let query = match query_id {
        0 => Query::Counts,
        5 => Query::Reciprocity,
        7 => Query::Stats,
        1 => Query::Degrees {
            u: r.take_u32("degrees params")?,
        },
        6 => Query::LocalClustering {
            u: r.take_u32("local_clustering params")?,
        },
        3 => Query::HasLink {
            src: r.take_u32("has_link params")?,
            dst: r.take_u32("has_link params")?,
        },
        4 => Query::CommonNeighbors {
            u: r.take_u32("common_neighbors params")?,
            v: r.take_u32("common_neighbors params")?,
        },
        2 => {
            let u = r.take_u32("out_neighbors params")?;
            let offset = r.take_u32("out_neighbors params")?;
            let limit = r.take_u32("out_neighbors params")?;
            if limit > MAX_NEIGHBOR_PAGE {
                return Err(NetError::BadParams {
                    query: "out_neighbors",
                    reason: "page limit exceeds MAX_NEIGHBOR_PAGE",
                });
            }
            Query::OutNeighbors { u, offset, limit }
        }
        id => return Err(NetError::UnknownQuery { id }),
    };
    Ok(query)
}

/// A successful query's typed result. The variant always matches the
/// request's query id (the codec enforces it on both ends).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Snapshot-wide counts.
    Counts {
        /// Social nodes.
        social_nodes: u64,
        /// Attribute nodes.
        attr_nodes: u64,
        /// Directed social links.
        social_links: u64,
        /// Attribute links.
        attr_links: u64,
    },
    /// Per-node degrees.
    Degrees {
        /// Out-degree.
        out: u32,
        /// In-degree.
        inc: u32,
        /// Attribute degree.
        attr: u32,
    },
    /// One neighbour page: the row's full length plus the page of ids.
    Neighbors {
        /// Total out-degree of the row (for pagination).
        total: u32,
        /// The page (`len ≤` [`MAX_NEIGHBOR_PAGE`]).
        ids: Vec<u32>,
    },
    /// Directed link membership.
    HasLink(bool),
    /// Common out-neighbour count.
    CommonNeighbors(u64),
    /// Global reciprocity.
    Reciprocity(f64),
    /// Local clustering coefficient.
    LocalClustering(f64),
    /// Metrics snapshot as Prometheus text exposition (v2). Wire form:
    /// `u32` byte length (`≤` [`MAX_STATS_BYTES`]) then that many UTF-8
    /// bytes.
    Stats(String),
}

impl QueryResult {
    /// The query id this result answers.
    pub fn query_id(&self) -> u16 {
        match self {
            QueryResult::Counts { .. } => 0,
            QueryResult::Degrees { .. } => 1,
            QueryResult::Neighbors { .. } => 2,
            QueryResult::HasLink(_) => 3,
            QueryResult::CommonNeighbors(_) => 4,
            QueryResult::Reciprocity(_) => 5,
            QueryResult::LocalClustering(_) => 6,
            QueryResult::Stats(_) => 7,
        }
    }

    fn encode_payload(&self, w: &mut WireWriter) {
        match self {
            QueryResult::Counts {
                social_nodes,
                attr_nodes,
                social_links,
                attr_links,
            } => {
                w.put_u64(*social_nodes);
                w.put_u64(*attr_nodes);
                w.put_u64(*social_links);
                w.put_u64(*attr_links);
            }
            QueryResult::Degrees { out, inc, attr } => {
                w.put_u32(*out);
                w.put_u32(*inc);
                w.put_u32(*attr);
            }
            QueryResult::Neighbors { total, ids } => {
                w.put_u32(*total);
                w.put_u32(ids.len() as u32);
                for id in ids {
                    w.put_u32(*id);
                }
            }
            QueryResult::HasLink(present) => w.put_u8(u8::from(*present)),
            QueryResult::CommonNeighbors(n) => w.put_u64(*n),
            QueryResult::Reciprocity(v) | QueryResult::LocalClustering(v) => w.put_f64(*v),
            QueryResult::Stats(text) => {
                w.put_u32(text.len() as u32);
                w.put_bytes(text.as_bytes());
            }
        }
    }
}

/// Parses a success payload for `query_id`. `payload` is exactly the
/// declared (already bounds-checked) payload block.
fn parse_payload(query_id: u16, payload: &[u8]) -> Result<QueryResult, NetError> {
    let name = query_name(query_id);
    let exact = |want: usize| -> Result<(), NetError> {
        if payload.len() != want {
            return Err(NetError::BadParams {
                query: name,
                reason: "payload length does not match the query id",
            });
        }
        Ok(())
    };
    let mut r = WireReader::new(payload);
    let result = match query_id {
        0 => {
            exact(32)?;
            QueryResult::Counts {
                social_nodes: r.take_u64("counts payload")?,
                attr_nodes: r.take_u64("counts payload")?,
                social_links: r.take_u64("counts payload")?,
                attr_links: r.take_u64("counts payload")?,
            }
        }
        1 => {
            exact(12)?;
            QueryResult::Degrees {
                out: r.take_u32("degrees payload")?,
                inc: r.take_u32("degrees payload")?,
                attr: r.take_u32("degrees payload")?,
            }
        }
        2 => {
            let total = r.take_u32("neighbors payload")?;
            let count = r.take_u32("neighbors payload")?;
            if count > MAX_NEIGHBOR_PAGE {
                return Err(NetError::FrameTooLarge {
                    declared: count,
                    max: MAX_NEIGHBOR_PAGE,
                });
            }
            exact(8 + 4 * count as usize)?;
            let mut ids = Vec::with_capacity(count as usize);
            for _ in 0..count {
                ids.push(r.take_u32("neighbors payload")?);
            }
            QueryResult::Neighbors { total, ids }
        }
        3 => {
            exact(1)?;
            match r.take_u8("has_link payload")? {
                0 => QueryResult::HasLink(false),
                1 => QueryResult::HasLink(true),
                _ => {
                    return Err(NetError::BadParams {
                        query: "has_link",
                        reason: "boolean byte is neither 0 nor 1",
                    })
                }
            }
        }
        4 => {
            exact(8)?;
            QueryResult::CommonNeighbors(r.take_u64("common_neighbors payload")?)
        }
        5 => {
            exact(8)?;
            QueryResult::Reciprocity(r.take_f64("reciprocity payload")?)
        }
        6 => {
            exact(8)?;
            QueryResult::LocalClustering(r.take_f64("local_clustering payload")?)
        }
        7 => {
            let len = r.take_u32("stats payload")?;
            if len > MAX_STATS_BYTES {
                return Err(NetError::FrameTooLarge {
                    declared: len,
                    max: MAX_STATS_BYTES,
                });
            }
            exact(4 + len as usize)?;
            let bytes = r.take_bytes(len as usize, "stats payload")?;
            match std::str::from_utf8(bytes) {
                Ok(text) => QueryResult::Stats(text.to_string()),
                Err(_) => {
                    return Err(NetError::BadParams {
                        query: "stats",
                        reason: "payload is not valid UTF-8",
                    })
                }
            }
        }
        id => return Err(NetError::UnknownQuery { id }),
    };
    Ok(result)
}

/// One response frame: a typed result or a typed error code.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query ran; `day_served` is the persisted day that answered
    /// it (nearest at or before the requested day).
    Ok {
        /// The persisted day that served the query.
        day_served: u32,
        /// The typed result (variant matches the request's query id).
        result: QueryResult,
    },
    /// The query was rejected with a typed code; `query_id` echoes the
    /// request.
    Err {
        /// Echo of the request's query id (0 when the server never
        /// decoded one, e.g. a connection-level `Busy`).
        query_id: u16,
        /// Why the query was rejected.
        code: ErrorCode,
    },
}

/// Validated response header fields (internal decode intermediary).
struct ResponseHeader {
    status: u16,
    query_id: u16,
    day_served: u32,
    payload_len: u32,
}

/// Parses + validates a response header in offset order: magic →
/// version → status → query id → reserved word → payload length bound.
fn parse_response_header(r: &mut WireReader<'_>) -> Result<ResponseHeader, NetError> {
    let magic: [u8; 4] = r.take_array("response magic")?;
    if magic != NET_MAGIC {
        return Err(NetError::BadMagic { found: magic });
    }
    let version = r.take_u16("response version")?;
    if version != NET_VERSION {
        return Err(NetError::UnsupportedVersion { found: version });
    }
    let status = r.take_u16("response status")?;
    if status != 0 && ErrorCode::from_status(status).is_none() {
        return Err(NetError::UnknownStatus { code: status });
    }
    let query_id = r.take_u16("response query id")?;
    if status == 0 && Query::params_len_for(query_id).is_none() {
        return Err(NetError::UnknownQuery { id: query_id });
    }
    let reserved = r.take_u16("response reserved word")?;
    if reserved != 0 {
        return Err(NetError::ReservedNonZero { found: reserved });
    }
    let day_served = r.take_u32("response day")?;
    let payload_len = r.take_u32("response payload length")?;
    // Per-query bound: the query id (validated above, and at a lower
    // offset) picks the bound the declared length is checked against.
    let max = max_payload_for(query_id);
    if payload_len > max {
        return Err(NetError::FrameTooLarge {
            declared: payload_len,
            max,
        });
    }
    if status != 0 && payload_len != 0 {
        return Err(NetError::BadParams {
            query: "error response",
            reason: "error responses carry no payload",
        });
    }
    Ok(ResponseHeader {
        status,
        query_id,
        day_served,
        payload_len,
    })
}

impl Response {
    /// Shorthand for a typed error response.
    pub fn err(query_id: u16, code: ErrorCode) -> Response {
        Response::Err { query_id, code }
    }

    /// The error code, when this is an error response.
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            Response::Err { code, .. } => Some(*code),
            Response::Ok { .. } => None,
        }
    }

    /// Encodes the frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(RESPONSE_HEADER_BYTES + 32);
        w.put_bytes(&NET_MAGIC);
        w.put_u16(NET_VERSION);
        match self {
            Response::Ok { day_served, result } => {
                w.put_u16(0);
                w.put_u16(result.query_id());
                w.put_u16(0);
                w.put_u32(*day_served);
                let mut payload = WireWriter::with_capacity(32);
                result.encode_payload(&mut payload);
                let payload = payload.finish();
                w.put_u32(payload.len() as u32);
                w.put_bytes(&payload);
            }
            Response::Err { query_id, code } => {
                w.put_u16(*code as u16);
                w.put_u16(*query_id);
                w.put_u16(0);
                w.put_u32(0);
                w.put_u32(0);
            }
        }
        w.finish()
    }

    /// Decodes one frame from the front of `bytes`, returning the
    /// response and the bytes consumed. Never panics; never reads past
    /// the frame.
    pub fn decode(bytes: &[u8]) -> Result<(Response, usize), NetError> {
        let mut r = WireReader::new(bytes);
        let header = parse_response_header(&mut r)?;
        let payload = r.take_bytes(header.payload_len as usize, "response payload")?;
        let response = match ErrorCode::from_status(header.status) {
            None => Response::Ok {
                day_served: header.day_served,
                result: parse_payload(header.query_id, payload)?,
            },
            Some(code) => Response::Err {
                query_id: header.query_id,
                code,
            },
        };
        Ok((response, r.consumed()))
    }

    /// Reads one frame from a blocking stream. `Ok(None)` is a clean
    /// close before the first header byte (e.g. a server that drained
    /// away); EOF anywhere later is [`NetError::Truncated`]. The payload
    /// buffer is sized only *after* the declared length passes its
    /// bound.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Response>, NetError> {
        let mut header = [0u8; RESPONSE_HEADER_BYTES];
        if !read_full(r, &mut header, "response header")? {
            return Ok(None);
        }
        let mut reader = WireReader::new(&header);
        let parsed = parse_response_header(&mut reader)?;
        let mut payload = vec![0u8; parsed.payload_len as usize];
        if !read_full(r, &mut payload, "response payload")? {
            return Err(NetError::Truncated {
                section: "response payload",
            });
        }
        let response = match ErrorCode::from_status(parsed.status) {
            None => Response::Ok {
                day_served: parsed.day_served,
                result: parse_payload(parsed.query_id, &payload)?,
            },
            Some(code) => Response::Err {
                query_id: parsed.query_id,
                code,
            },
        };
        Ok(Some(response))
    }

    /// Writes the frame to a blocking stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }
}

/// Fills `buf` from the stream. `Ok(false)` is a clean EOF before the
/// first byte; EOF mid-buffer is [`NetError::Truncated`] naming
/// `section`. An empty `buf` trivially succeeds.
fn read_full(r: &mut impl Read, buf: &mut [u8], section: &'static str) -> Result<bool, NetError> {
    let mut got = 0;
    while got < buf.len() {
        // BOUNDS: `got` only grows by the bytes `read` reported and the
        // loop guard keeps it < buf.len(), so the slice start is in range.
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(NetError::Truncated { section });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_layout_is_byte_exact() {
        let frame = Request {
            day: 7,
            query: Query::Degrees { u: 0x0102_0304 },
        }
        .encode();
        assert_eq!(&frame[..4], b"SANW");
        assert_eq!(frame[4..6], [2, 0]); // version 2 LE
        assert_eq!(frame[6..8], [1, 0]); // query id 1
        assert_eq!(frame[8..12], [7, 0, 0, 0]); // day
        assert_eq!(frame[12..16], [4, 0, 0, 0]); // params_len
        assert_eq!(frame[16..20], [0x04, 0x03, 0x02, 0x01]); // u LE
        assert_eq!(frame.len(), REQUEST_HEADER_BYTES + 4);
    }

    #[test]
    fn error_response_layout_is_byte_exact() {
        let frame = Response::err(3, ErrorCode::Busy).encode();
        assert_eq!(&frame[..4], b"SANW");
        assert_eq!(frame[4..6], [2, 0]); // version
        assert_eq!(frame[6..8], [1, 0]); // status = Busy
        assert_eq!(frame[8..10], [3, 0]); // query id echo
        assert_eq!(frame[10..12], [0, 0]); // reserved
        assert_eq!(frame[12..16], [0, 0, 0, 0]); // day_served
        assert_eq!(frame[16..20], [0, 0, 0, 0]); // payload_len
        assert_eq!(frame.len(), RESPONSE_HEADER_BYTES);
    }

    #[test]
    fn stream_roundtrip_via_cursor() {
        let req = Request {
            day: 12,
            query: Query::OutNeighbors {
                u: 9,
                offset: 2,
                limit: 100,
            },
        };
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(Request::read_from(&mut cursor).unwrap(), Some(req));
        assert_eq!(Request::read_from(&mut cursor).unwrap(), None);

        let resp = Response::Ok {
            day_served: 11,
            result: QueryResult::Neighbors {
                total: 3,
                ids: vec![1, 2, 3],
            },
        };
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(Response::read_from(&mut cursor).unwrap(), Some(resp));
        assert_eq!(Response::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn stats_frames_round_trip_with_exact_layout() {
        let frame = Request {
            day: 0,
            query: Query::Stats,
        }
        .encode();
        assert_eq!(frame[6..8], [7, 0]); // query id 7
        assert_eq!(frame[12..16], [0, 0, 0, 0]); // no params
        assert_eq!(frame.len(), REQUEST_HEADER_BYTES);
        assert_eq!(Request::decode(&frame).unwrap().0.query, Query::Stats);

        let text = "# TYPE san_net_requests counter\nsan_net_requests 3\n";
        let resp = Response::Ok {
            day_served: 0,
            result: QueryResult::Stats(text.to_string()),
        };
        let frame = resp.encode();
        // Payload: u32 length prefix then the UTF-8 bytes.
        assert_eq!(
            frame[RESPONSE_HEADER_BYTES..RESPONSE_HEADER_BYTES + 4],
            (text.len() as u32).to_le_bytes()
        );
        assert_eq!(&frame[RESPONSE_HEADER_BYTES + 4..], text.as_bytes());
        assert_eq!(Response::decode(&frame).unwrap(), (resp, frame.len()));
    }

    #[test]
    fn stats_payload_rejects_bad_utf8_and_oversized_lengths() {
        let frame = Response::Ok {
            day_served: 0,
            result: QueryResult::Stats("ok".to_string()),
        }
        .encode();
        // Flip a payload byte to an invalid UTF-8 lead byte.
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() = 0xFF;
        assert!(matches!(
            Response::decode(&bad),
            Err(NetError::BadParams { query: "stats", .. })
        ));
        // A declared text length beyond MAX_STATS_BYTES is rejected
        // from the length prefix alone.
        let mut bad = frame;
        bad[RESPONSE_HEADER_BYTES..RESPONSE_HEADER_BYTES + 4]
            .copy_from_slice(&(MAX_STATS_BYTES + 1).to_le_bytes());
        assert!(matches!(
            Response::decode(&bad),
            Err(NetError::FrameTooLarge { max, .. }) if max == MAX_STATS_BYTES
        ));
    }
}
