//! # san-net — the TCP serving front-end
//!
//! `san-serve` made snapshot serving concurrent *in-process*; this crate
//! puts it on the wire, so the "heavy traffic from millions of users"
//! claim behind the paper's Google+ measurements has a measurable
//! cross-process surface: a length-prefixed binary protocol over
//! `std::net::TcpListener` (no external dependencies), a thread-per-core
//! worker pool over [`SnapshotServer`](san_serve::SnapshotServer),
//! admission control that sheds overload as typed `Busy` responses
//! instead of queueing unboundedly, and a graceful shutdown that drains
//! workers. The paired load generators (closed- and open-loop) live in
//! `san-bench`; their p50/p99/p999 land in `BENCH_NET.json`.
//!
//! ## Wire format (`SANW`, version 2)
//!
//! Little-endian throughout, in the house framing style of the
//! `SANCSRBF` snapshot store: fixed headers, explicit length prefixes,
//! *bounds before bytes*. One request frame:
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────
//!      0     4  magic          "SANW"
//!      4     2  version        u16, must equal 2
//!      6     2  query id       u16 (see below)
//!      8     4  day            u32, ≤ MAX_DAY (2²⁰)
//!     12     4  params_len     u32, ≤ MAX_PARAMS_BYTES (64)
//!     16     …  params         exactly params_len bytes
//! ```
//!
//! One response frame:
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────
//!      0     4  magic          "SANW"
//!      4     2  version        u16, must equal 2
//!      6     2  status         0 = ok, else ErrorCode
//!      8     2  query id       u16 (echo of the request)
//!     10     2  reserved       must be 0 (future use)
//!     12     4  day_served     u32 (0 on error)
//!     16     4  payload_len    u32, ≤ MAX_PAYLOAD_BYTES (16 392) —
//!                              except query id 7, which is allowed
//!                              4 + MAX_STATS_BYTES (the query id sits
//!                              at a lower offset, so the per-query
//!                              bound is known before the length);
//!                              must be 0 on error
//!     20     …  payload        exactly payload_len bytes
//! ```
//!
//! Queries and their params / success payloads (all integers
//! little-endian, `f64` as IEEE-754 bits):
//!
//! ```text
//! id  query             params                     payload
//! ──  ────────────────  ─────────────────────────  ─────────────────────────
//!  0  counts            —                          4 × u64 node/link counts
//!  1  degrees           u: u32                     out, in, attr: 3 × u32
//!  2  out_neighbors     u, offset, limit: 3 × u32  total: u32, count: u32,
//!                       (limit ≤ 4096)             count × u32 ids
//!  3  has_link          src, dst: 2 × u32          u8 ∈ {0, 1}
//!  4  common_neighbors  u, v: 2 × u32              u64
//!  5  reciprocity       —                          f64 bits
//!  6  local_clustering  u: u32                     f64 bits
//!  7  stats (v2)        — (day ignored)            len: u32 ≤ MAX_STATS_BYTES
//!                                                  (2²⁰), len UTF-8 bytes of
//!                                                  Prometheus exposition
//! ```
//!
//! Error codes: 1 `Busy`, 2 `NoSnapshot`, 3 `NodeOutOfRange`,
//! 4 `ShuttingDown`, 5 `StoreFailed`, 6 `BadRequest`.
//!
//! ## Versioning policy
//!
//! The version word is a single monotone `u16`; **any** change to frame
//! layout, query/params/payload encodings, or error-code meanings bumps
//! it. v1 → v2 added the `stats` query — exactly the policy's "new
//! query ids bump the version", since an unknown id is a decode error,
//! not a negotiable capability. There is still no negotiation: both
//! peers send their version and reject anything unequal with a typed
//! [`UnsupportedVersion`](proto::NetError::UnsupportedVersion) — a
//! deliberate choice while client and server ship from one workspace. A
//! future version can use the response's reserved word (rejected unless
//! zero today, so old peers can never misread it) to advertise a
//! version range.
//!
//! ## Observability
//!
//! The server wires the `san-obs` stack together: a
//! [`MetricRegistry`](san_obs::MetricRegistry) spanning all three
//! layers (vault, serve, net — each source base-labelled
//! `layer="…"`), per-request traces feeding the slow-query ring, and
//! two scrape surfaces serving one consistent snapshot each: the admin
//! HTTP listener ([`NetConfig::admin`](server::NetConfig)) with
//! `GET /metrics` + `GET /slowlog`, and the in-protocol `stats` query
//! for SANW clients.
//!
//! ## Why no checksum?
//!
//! `SANCSRBF` checksums its arrays because disk bytes have no other
//! integrity layer. These frames ride TCP, which already carries one;
//! what TCP does *not* provide is framing discipline against buggy or
//! hostile peers — exactly what the magic/version/bounds checks and the
//! corruption matrix (`tests/proto_corruption.rs`) cover.
//!
//! ## Serving model
//!
//! See [`server`] (Unix-only, like `san-serve`'s mmap substrate — the
//! protocol, executor, pool, and client modules stay portable): an
//! acceptor thread feeds a bounded [`ConnQueue`](pool::ConnQueue); each
//! worker owns one connection at a time and serves frames
//! request/response; three admission gates (connection backlog,
//! in-flight cap, resident-byte budget) turn overload into typed
//! `Busy`; shutdown drains via the stop-flag + queue-stop handshake the
//! `loom-lite` model suite checks exhaustively.

#[cfg(unix)]
mod admin;
pub mod client;
pub mod exec;
pub mod metrics;
#[cfg(test)]
mod model_tests;
pub mod pool;
pub mod proto;
#[cfg(unix)]
pub mod server;

pub use client::NetClient;
pub use exec::execute;
pub use metrics::NetMetrics;
pub use proto::{ErrorCode, NetError, Query, QueryResult, Request, Response};
#[cfg(unix)]
pub use server::{NetConfig, NetServer};
