//! Worker-pool plumbing: the bounded connection queue the acceptor
//! feeds and the in-flight admission gate workers pass requests
//! through.
//!
//! Both primitives are built on `loom-lite`'s dual-mode sync types, so
//! the exact code the server runs in production is what
//! `model_tests.rs` exhaustively schedules: no stranded worker on
//! shutdown, every queued connection ends in exactly one of
//! {popped, rejected, drained}, and the gate never admits past its cap.

use loom_lite::sync::atomic::{AtomicU64, Ordering};
use loom_lite::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Queue state stays coherent under poisoning (each critical section
    // leaves items/stopped consistent), so a panicking sibling doesn't
    // cascade into every worker.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct QueueState<T> {
    items: VecDeque<T>,
    stopped: bool,
}

/// Bounded MPMC hand-off from the acceptor to the workers.
///
/// * [`push`](ConnQueue::push) **never blocks**: a full or stopped
///   queue returns the item to the caller, which answers the peer with
///   a typed `Busy`/`ShuttingDown` instead of letting connections pile
///   up unboundedly (the "overload → typed response, never a hang"
///   contract starts here).
/// * [`pop`](ConnQueue::pop) blocks while the queue is empty and live,
///   and returns `None` once it is stopped **and** drained — a worker's
///   natural exit signal.
/// * [`stop`](ConnQueue::stop) flips the stop flag, wakes every blocked
///   consumer, and hands the un-popped remainder back to the caller so
///   each pending connection can be answered before the socket closes.
pub struct ConnQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> ConnQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> ConnQueue<T> {
        ConnQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                stopped: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or
    /// stopped. Never blocks.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = lock(&self.state);
        if state.stopped || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty and
    /// live. `None` means stopped-and-drained: the consumer should
    /// exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.stopped {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Stops the queue: future pushes are rejected, every blocked
    /// consumer wakes (and exits once the backlog is gone), and the
    /// not-yet-popped remainder is returned for a typed farewell.
    pub fn stop(&self) -> Vec<T> {
        let mut state = lock(&self.state);
        state.stopped = true;
        let drained = state.items.drain(..).collect();
        drop(state);
        self.ready.notify_all();
        drained
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`stop`](ConnQueue::stop) has run.
    pub fn is_stopped(&self) -> bool {
        lock(&self.state).stopped
    }
}

/// Request-level admission gate: at most `cap` requests execute at
/// once; excess admissions fail fast so the caller answers `Busy`.
pub struct InflightGate {
    inflight: AtomicU64,
    cap: u64,
}

impl InflightGate {
    /// A gate admitting at most `cap` concurrent requests (`cap == 0`
    /// rejects everything — useful for drain/test modes).
    pub fn new(cap: u64) -> InflightGate {
        InflightGate {
            inflight: AtomicU64::new(0),
            cap,
        }
    }

    /// Tries to admit one request. The permit releases its slot on
    /// drop; `None` means the gate is at capacity *right now*.
    pub fn try_enter(&self) -> Option<InflightPermit<'_>> {
        // ORDERING: Relaxed suffices — the counter is a pure admission
        // quota, not a publication fence: no data is transferred through
        // it, and the CAS in fetch_update makes each increment exact
        // (never past `cap`) regardless of ordering.
        self.inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                if n < self.cap {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .ok()
            .map(|_| InflightPermit { gate: self })
    }

    /// Requests currently admitted.
    pub fn in_flight(&self) -> u64 {
        // ORDERING: Relaxed — monitoring read of a quota counter; see
        // `try_enter`.
        self.inflight.load(Ordering::Relaxed)
    }

    /// The admission cap.
    pub fn cap(&self) -> u64 {
        self.cap
    }
}

/// An admitted request's slot; dropping it frees the slot.
pub struct InflightPermit<'a> {
    gate: &'a InflightGate,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        // ORDERING: Relaxed — the matching decrement of `try_enter`'s
        // quota increment; no data is published through the counter.
        // fetch_update (not fetch_add of a wrapped negative) keeps the
        // release exact under the model too.
        let _ = self
            .gate
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_and_capacity() {
        let q = ConnQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn stop_drains_and_unblocks() {
        let q = ConnQueue::new(4);
        assert!(q.push(7).is_ok());
        assert!(q.push(8).is_ok());
        let drained = q.stop();
        assert_eq!(drained, vec![7, 8]);
        assert!(q.is_stopped());
        assert_eq!(q.pop(), None);
        assert_eq!(q.push(9), Err(9));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = ConnQueue::new(0);
        assert!(q.push(1).is_ok());
        assert_eq!(q.push(2), Err(2));
    }

    #[test]
    fn gate_admits_to_cap_and_slots_free_on_drop() {
        let gate = InflightGate::new(2);
        let a = gate.try_enter().unwrap();
        let b = gate.try_enter().unwrap();
        assert!(gate.try_enter().is_none());
        assert_eq!(gate.in_flight(), 2);
        drop(a);
        let c = gate.try_enter().unwrap();
        assert!(gate.try_enter().is_none());
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_cap_gate_rejects_everything() {
        let gate = InflightGate::new(0);
        assert!(gate.try_enter().is_none());
        assert_eq!(gate.in_flight(), 0);
    }
}
