//! Query execution: dispatch a decoded [`Query`] against any
//! [`SanRead`] snapshot view.
//!
//! Kept separate from the socket layer so the request→result mapping is
//! unit-testable without a listener, and so the server's worker loop
//! stays a thin shell: decode → admit → `execute` → encode.

use crate::proto::{ErrorCode, Query, QueryResult, MAX_NEIGHBOR_PAGE};
use san_graph::{SanRead, SocialId};
use san_metrics::clustering::local_clustering_social;
use san_metrics::reciprocity::global_reciprocity;

/// Runs one query against a snapshot view. Node-id params are validated
/// against the *served* snapshot here (the protocol layer cannot know
/// its size), so a hostile id yields [`ErrorCode::NodeOutOfRange`] —
/// never a panic and never an out-of-bounds row access.
pub fn execute(query: Query, view: &impl SanRead) -> Result<QueryResult, ErrorCode> {
    let nodes = view.num_social_nodes();
    let check = |id: u32| -> Result<SocialId, ErrorCode> {
        if (id as usize) < nodes {
            Ok(SocialId(id))
        } else {
            Err(ErrorCode::NodeOutOfRange)
        }
    };
    match query {
        Query::Counts => Ok(QueryResult::Counts {
            social_nodes: nodes as u64,
            attr_nodes: view.num_attr_nodes() as u64,
            social_links: view.num_social_links() as u64,
            attr_links: view.num_attr_links() as u64,
        }),
        Query::Degrees { u } => {
            let u = check(u)?;
            Ok(QueryResult::Degrees {
                out: view.out_degree(u) as u32,
                inc: view.in_degree(u) as u32,
                attr: view.attr_degree(u) as u32,
            })
        }
        Query::OutNeighbors { u, offset, limit } => {
            let u = check(u)?;
            let row = view.out_neighbors(u);
            let limit = limit.min(MAX_NEIGHBOR_PAGE) as usize;
            let ids = row
                .iter()
                .skip(offset as usize)
                .take(limit)
                .map(|v| v.0)
                .collect();
            Ok(QueryResult::Neighbors {
                total: row.len() as u32,
                ids,
            })
        }
        Query::HasLink { src, dst } => {
            let (src, dst) = (check(src)?, check(dst)?);
            Ok(QueryResult::HasLink(view.has_social_link(src, dst)))
        }
        Query::CommonNeighbors { u, v } => {
            let (u, v) = (check(u)?, check(v)?);
            Ok(QueryResult::CommonNeighbors(
                view.common_social_neighbors(u, v) as u64,
            ))
        }
        Query::Reciprocity => Ok(QueryResult::Reciprocity(global_reciprocity(view))),
        Query::LocalClustering { u } => {
            let u = check(u)?;
            Ok(QueryResult::LocalClustering(local_clustering_social(
                view, u,
            )))
        }
        // Stats reads the server's metric registry, not a snapshot —
        // the front-end answers it before admission ever reaches the
        // executor. Reaching here means a caller misrouted it.
        Query::Stats => Err(ErrorCode::BadRequest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_graph::San;

    fn sample() -> San {
        let mut san = San::new();
        for _ in 0..4 {
            san.add_social_node();
        }
        san.add_social_link(SocialId(0), SocialId(1));
        san.add_social_link(SocialId(0), SocialId(2));
        san.add_social_link(SocialId(1), SocialId(2));
        san.add_social_link(SocialId(2), SocialId(0));
        san
    }

    #[test]
    fn counts_and_degrees_match_the_view() {
        let san = sample();
        assert_eq!(
            execute(Query::Counts, &san),
            Ok(QueryResult::Counts {
                social_nodes: 4,
                attr_nodes: 0,
                social_links: 4,
                attr_links: 0,
            })
        );
        assert_eq!(
            execute(Query::Degrees { u: 0 }, &san),
            Ok(QueryResult::Degrees {
                out: 2,
                inc: 1,
                attr: 0
            })
        );
    }

    #[test]
    fn neighbor_paging_clamps_to_the_row() {
        let san = sample();
        let page = execute(
            Query::OutNeighbors {
                u: 0,
                offset: 1,
                limit: 10,
            },
            &san,
        );
        assert_eq!(
            page,
            Ok(QueryResult::Neighbors {
                total: 2,
                ids: vec![2],
            })
        );
        // Offset past the row end: empty page, total still reported.
        assert_eq!(
            execute(
                Query::OutNeighbors {
                    u: 0,
                    offset: 99,
                    limit: 10,
                },
                &san,
            ),
            Ok(QueryResult::Neighbors {
                total: 2,
                ids: vec![],
            })
        );
    }

    #[test]
    fn hostile_node_ids_are_typed_rejections() {
        let san = sample();
        for query in [
            Query::Degrees { u: 4 },
            Query::OutNeighbors {
                u: u32::MAX,
                offset: 0,
                limit: 1,
            },
            Query::HasLink { src: 0, dst: 4 },
            Query::CommonNeighbors { u: 9, v: 0 },
            Query::LocalClustering { u: 4 },
        ] {
            assert_eq!(execute(query, &san), Err(ErrorCode::NodeOutOfRange));
        }
    }
}
