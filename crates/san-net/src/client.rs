//! [`NetClient`]: a minimal blocking client — one connection, one
//! in-flight request — used by the load generators in `san-bench` and
//! the loopback test suites.

use crate::proto::{NetError, Query, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client over one TCP connection.
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects (Nagle off — the protocol is request/response).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream })
    }

    /// Bounds how long [`query`](NetClient::query) may wait on the
    /// server (safety net for tests; `None` waits indefinitely).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends one request and blocks for its typed response. A server
    /// that closed without answering (drained away mid-connection)
    /// surfaces as [`NetError::Truncated`] on the response header.
    pub fn query(&mut self, day: u32, query: Query) -> Result<Response, NetError> {
        Request { day, query }.write_to(&mut self.stream)?;
        match Response::read_from(&mut self.stream)? {
            Some(response) => Ok(response),
            None => Err(NetError::Truncated {
                section: "response header",
            }),
        }
    }
}
