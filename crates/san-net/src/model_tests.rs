//! `loom-lite` model checks of the accept-loop shutdown handshake: the
//! exact production [`ConnQueue`](crate::pool::ConnQueue) and
//! [`InflightGate`](crate::pool::InflightGate) code (dual-mode
//! `loom_lite::sync` primitives) explored across **every** 2–3-thread
//! schedule.
//!
//! Each scenario asserts, in every explored interleaving:
//!
//! * **no stranded worker** — a consumer blocked in `pop` always wakes
//!   on `stop` and exits with `None` (a schedule where it stays parked
//!   would be reported as a model deadlock);
//! * **no double-drop / no loss of a connection slot** — every pushed
//!   token ends in *exactly one* of {popped by a worker, rejected at
//!   push, drained by `stop`};
//! * **backpressure counter consistency** — the in-flight gate never
//!   admits past its cap, concurrency observed inside the critical
//!   region never exceeds the cap, and every slot is returned (the
//!   counter is zero once all threads join).

// Redundant with the gated `mod` declaration in lib.rs, but makes this
// file self-describing as test-only code (san-audit classifies files
// with a test-gating inner attribute as test code).
#![cfg(test)]

use crate::pool::{ConnQueue, InflightGate};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Two producers race one consumer and a mid-stream `stop` on a
/// capacity-1 queue: every token lands exactly once, whatever the
/// schedule.
#[test]
fn every_connection_slot_lands_exactly_once() {
    // Plain std atomics: cross-iteration statistics, not modelled state.
    let saw_reject = Arc::new(AtomicU64::new(0));
    let saw_drain = Arc::new(AtomicU64::new(0));
    let (reject_stat, drain_stat) = (Arc::clone(&saw_reject), Arc::clone(&saw_drain));
    let report = loom_lite::model(move || {
        let queue = Arc::new(ConnQueue::new(1));
        let producers: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|token| {
                let queue = Arc::clone(&queue);
                loom_lite::thread::spawn(move || queue.push(token).err())
            })
            .collect();
        let consumer = {
            let queue = Arc::clone(&queue);
            loom_lite::thread::spawn(move || {
                let mut popped = Vec::new();
                while let Some(token) = queue.pop() {
                    popped.push(token);
                }
                popped
            })
        };
        let rejected: Vec<u64> = producers
            .into_iter()
            .filter_map(|p| p.join().expect("producer"))
            .collect();
        let drained = queue.stop();
        let popped = consumer.join().expect("consumer");

        let mut all: Vec<u64> = Vec::new();
        all.extend(&rejected);
        all.extend(&drained);
        all.extend(&popped);
        all.sort_unstable();
        // Exactly-once accounting: nothing lost, nothing duplicated.
        assert_eq!(all, vec![1, 2]);
        assert!(queue.is_empty());
        reject_stat.fetch_add(rejected.len() as u64, Ordering::Relaxed);
        drain_stat.fetch_add(drained.len() as u64, Ordering::Relaxed);
    });
    assert!(report.iterations > 1, "model explored only one schedule");
    // Across the full schedule space both overload outcomes must be
    // reachable: a push rejected by the full queue, and a token left
    // for stop() to drain.
    assert!(saw_reject.load(Ordering::Relaxed) > 0);
    assert!(saw_drain.load(Ordering::Relaxed) > 0);
}

/// A consumer parked in `pop` races the stopper: no schedule strands
/// it (loom-lite reports a deadlock if any does), and a token pushed
/// concurrently with `stop` is still served or drained — never lost.
#[test]
fn stop_never_strands_a_parked_worker() {
    let report = loom_lite::model(|| {
        let queue = Arc::new(ConnQueue::new(2));
        let worker = {
            let queue = Arc::clone(&queue);
            loom_lite::thread::spawn(move || {
                let mut popped = 0u64;
                while queue.pop().is_some() {
                    popped += 1;
                }
                popped
            })
        };
        let producer = {
            let queue = Arc::clone(&queue);
            loom_lite::thread::spawn(move || queue.push(7).is_ok())
        };
        let stopper = {
            let queue = Arc::clone(&queue);
            loom_lite::thread::spawn(move || queue.stop().len() as u64)
        };
        let accepted = producer.join().expect("producer");
        let drained = stopper.join().expect("stopper");
        let popped = worker.join().expect("worker");
        // The worker always exits (join returned), and the token's
        // fate is exactly one of {rejected, drained, popped}.
        assert_eq!(u64::from(accepted), drained + popped);
    });
    assert!(report.iterations > 1, "model explored only one schedule");
}

/// Two threads hammer a cap-1 gate: observed concurrency never exceeds
/// the cap, the admission beyond it fails fast, and every slot is
/// returned.
#[test]
fn inflight_gate_never_exceeds_cap_and_returns_every_slot() {
    let saw_busy = Arc::new(AtomicU64::new(0));
    let busy_stat = Arc::clone(&saw_busy);
    let report = loom_lite::model(move || {
        let gate = Arc::new(InflightGate::new(1));
        let active = Arc::new(loom_lite::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let active = Arc::clone(&active);
                loom_lite::thread::spawn(move || {
                    let Some(permit) = gate.try_enter() else {
                        return 0u64;
                    };
                    // ORDERING: Relaxed — model-explored instrumentation
                    // counter; loom-lite explores under SeqCst anyway.
                    let now = active.fetch_add(1, Ordering::Relaxed) + 1;
                    assert!(now <= 1, "gate admitted past its cap");
                    active
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| Some(n - 1))
                        .ok();
                    drop(permit);
                    1
                })
            })
            .collect();
        let admitted: u64 = handles.into_iter().map(|h| h.join().expect("thread")).sum();
        assert!(admitted >= 1, "some schedule admitted nobody");
        busy_stat.fetch_add(u64::from(admitted < 2), Ordering::Relaxed);
        // Backpressure counter consistency: every admitted slot was
        // returned once both threads joined.
        assert_eq!(gate.in_flight(), 0);
    });
    assert!(report.iterations > 1, "model explored only one schedule");
    // At least one schedule must have hit the cap (a permit still held
    // when the second thread tried).
    assert!(saw_busy.load(Ordering::Relaxed) > 0);
}
