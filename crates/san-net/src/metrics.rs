//! Serving-front-end meters: what the TCP layer did and how long
//! requests took, shared lock-free by the acceptor and every worker.

use san_graph::meter::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// ORDERING: every counter below is a statistically-read meter — no
// reader makes a control decision requiring cross-counter consistency,
// and no data is published through them — so Relaxed loads/stores are
// exact enough everywhere in this module.

/// Counters + request-latency histogram for a `NetServer`.
#[derive(Debug, Default)]
pub struct NetMetrics {
    accepted_conns: AtomicU64,
    rejected_conns: AtomicU64,
    requests: AtomicU64,
    served: AtomicU64,
    busy: AtomicU64,
    no_snapshot: AtomicU64,
    node_out_of_range: AtomicU64,
    store_failed: AtomicU64,
    decode_errors: AtomicU64,
    request_latency: LatencyHistogram,
}

macro_rules! meter {
    ($record:ident, $get:ident, $field:ident, $doc:literal) => {
        #[doc = concat!("Increments ", $doc, ".")]
        pub(crate) fn $record(&self) {
            // ORDERING: Relaxed — pure meter, see module header.
            self.$field.fetch_add(1, Ordering::Relaxed);
        }

        #[doc = concat!("Reads ", $doc, ".")]
        pub fn $get(&self) -> u64 {
            // ORDERING: Relaxed — pure meter, see module header.
            self.$field.load(Ordering::Relaxed)
        }
    };
}

impl NetMetrics {
    /// Fresh, all-zero meters.
    pub fn new() -> NetMetrics {
        NetMetrics::default()
    }

    meter!(
        record_accepted_conn,
        accepted_conns,
        accepted_conns,
        "connections the acceptor handed to the pool"
    );
    meter!(
        record_rejected_conn,
        rejected_conns,
        rejected_conns,
        "connections refused at accept (queue full or draining)"
    );
    meter!(record_request, requests, requests, "request frames decoded");
    meter!(record_served, served, served, "requests answered `Ok`");
    meter!(
        record_busy,
        busy,
        busy,
        "requests rejected `Busy` by admission control"
    );
    meter!(
        record_no_snapshot,
        no_snapshot,
        no_snapshot,
        "requests for days before the first persisted snapshot"
    );
    meter!(
        record_node_out_of_range,
        node_out_of_range,
        node_out_of_range,
        "requests naming nodes outside the served snapshot"
    );
    meter!(
        record_store_failed,
        store_failed,
        store_failed,
        "requests that hit a store-side map/validate failure"
    );
    meter!(
        record_decode_error,
        decode_errors,
        decode_errors,
        "malformed request frames (connection closed after)"
    );

    /// Records one request's wall-clock service time (decode → response
    /// written), whatever the outcome.
    pub(crate) fn record_request_latency(&self, elapsed: Duration) {
        self.request_latency.record(elapsed);
    }

    /// The request-latency histogram (p50/p99/p999 via
    /// [`LatencyHistogram::quantile_nanos`]).
    pub fn request_latency(&self) -> &LatencyHistogram {
        &self.request_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_zero_and_count() {
        let m = NetMetrics::new();
        assert_eq!(m.requests(), 0);
        m.record_request();
        m.record_request();
        m.record_busy();
        assert_eq!(m.requests(), 2);
        assert_eq!(m.busy(), 1);
        assert_eq!(m.served(), 0);
        m.record_request_latency(Duration::from_micros(3));
        assert_eq!(m.request_latency().count(), 1);
    }
}
