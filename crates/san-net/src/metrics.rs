//! Serving-front-end meters: what the TCP layer did and how long
//! requests took, shared lock-free by the acceptor and every worker.

use san_graph::meter::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// ORDERING: every counter below is a statistically-read meter — no
// reader makes a control decision requiring cross-counter consistency,
// and no data is published through them — so Relaxed loads/stores are
// exact enough everywhere in this module.

/// Counters + request-latency histogram for a `NetServer`.
#[derive(Debug, Default)]
pub struct NetMetrics {
    accepted_conns: AtomicU64,
    rejected_conns: AtomicU64,
    requests: AtomicU64,
    served: AtomicU64,
    busy: AtomicU64,
    no_snapshot: AtomicU64,
    node_out_of_range: AtomicU64,
    store_failed: AtomicU64,
    bad_request: AtomicU64,
    shutting_down: AtomicU64,
    decode_errors: AtomicU64,
    request_latency: LatencyHistogram,
}

macro_rules! meter {
    ($record:ident, $get:ident, $field:ident, $doc:literal) => {
        #[doc = concat!("Increments ", $doc, ".")]
        pub(crate) fn $record(&self) {
            // ORDERING: Relaxed — pure meter, see module header.
            self.$field.fetch_add(1, Ordering::Relaxed);
        }

        #[doc = concat!("Reads ", $doc, ".")]
        pub fn $get(&self) -> u64 {
            // ORDERING: Relaxed — pure meter, see module header.
            self.$field.load(Ordering::Relaxed)
        }
    };
}

impl NetMetrics {
    /// Fresh, all-zero meters.
    pub fn new() -> NetMetrics {
        NetMetrics::default()
    }

    meter!(
        record_accepted_conn,
        accepted_conns,
        accepted_conns,
        "connections the acceptor handed to the pool"
    );
    meter!(
        record_rejected_conn,
        rejected_conns,
        rejected_conns,
        "connections refused at accept (queue full or draining)"
    );
    meter!(
        record_request,
        requests,
        requests,
        "request frames attempted (decoded or malformed); every one \
         lands in exactly one outcome counter, so `served + busy + \
         no_snapshot + node_out_of_range + store_failed + bad_request + \
         shutting_down == requests` once the server quiesces"
    );
    meter!(record_served, served, served, "requests answered `Ok`");
    meter!(
        record_busy,
        busy,
        busy,
        "requests rejected `Busy` by admission control"
    );
    meter!(
        record_no_snapshot,
        no_snapshot,
        no_snapshot,
        "requests for days before the first persisted snapshot"
    );
    meter!(
        record_node_out_of_range,
        node_out_of_range,
        node_out_of_range,
        "requests naming nodes outside the served snapshot"
    );
    meter!(
        record_store_failed,
        store_failed,
        store_failed,
        "requests that hit a store-side map/validate failure"
    );
    meter!(
        record_bad_request,
        bad_request,
        bad_request,
        "requests answered `BadRequest` (malformed frame)"
    );
    meter!(
        record_shutting_down,
        shutting_down,
        shutting_down,
        "requests answered `ShuttingDown` (arrived during drain)"
    );
    meter!(
        record_decode_error,
        decode_errors,
        decode_errors,
        "malformed request frames (connection closed after)"
    );

    /// Records one request's wall-clock service time (decode → response
    /// written), whatever the outcome.
    pub(crate) fn record_request_latency(&self, elapsed: Duration) {
        self.request_latency.record(elapsed);
    }

    /// The request-latency histogram (p50/p99/p999 via
    /// [`LatencyHistogram::quantile_nanos`]).
    pub fn request_latency(&self) -> &LatencyHistogram {
        &self.request_latency
    }
}

/// Emits the front-end meters under the stable `san.net.*` dotted
/// names: connection counters labelled by `state`, the request counter,
/// one `san.net.responses{outcome=…}` series per typed outcome (their
/// sum equals `san.net.requests` at quiescence), decode errors, and the
/// full request-latency bucket dump.
impl san_obs::Observe for NetMetrics {
    fn observe(&self, sink: &mut dyn san_obs::MetricSink) {
        const CONNS_HELP: &str = "Connections by accept outcome";
        sink.counter(
            "san.net.conns",
            CONNS_HELP,
            &[("state", "accepted")],
            self.accepted_conns(),
        );
        sink.counter(
            "san.net.conns",
            CONNS_HELP,
            &[("state", "rejected")],
            self.rejected_conns(),
        );
        sink.counter(
            "san.net.requests",
            "Request frames attempted (decoded or malformed)",
            &[],
            self.requests(),
        );
        const RESP_HELP: &str = "Responses by typed outcome";
        for (outcome, value) in [
            ("served", self.served()),
            ("busy", self.busy()),
            ("no_snapshot", self.no_snapshot()),
            ("node_out_of_range", self.node_out_of_range()),
            ("store_failed", self.store_failed()),
            ("bad_request", self.bad_request()),
            ("shutting_down", self.shutting_down()),
        ] {
            sink.counter(
                "san.net.responses",
                RESP_HELP,
                &[("outcome", outcome)],
                value,
            );
        }
        sink.counter(
            "san.net.decode_errors",
            "Malformed request frames (connection closed after)",
            &[],
            self.decode_errors(),
        );
        sink.histogram(
            "san.net.request_latency",
            "Request service time, decode to response written",
            &[],
            &self.request_latency.snapshot(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_obs::{HistogramSnapshot, MetricSink, Observe};

    #[test]
    fn every_outcome_counter_feeds_the_accounting_equation() {
        let m = NetMetrics::new();
        m.record_bad_request();
        m.record_shutting_down();
        m.record_shutting_down();
        assert_eq!(m.bad_request(), 1);
        assert_eq!(m.shutting_down(), 2);
        // One record_request per attempted frame, one outcome each.
        for _ in 0..3 {
            m.record_request();
        }
        m.record_served();
        let outcomes = m.served()
            + m.busy()
            + m.no_snapshot()
            + m.node_out_of_range()
            + m.store_failed()
            + m.bad_request()
            + m.shutting_down();
        assert_eq!(outcomes, 4); // 1 served + 1 bad_request + 2 shutting_down
    }

    #[test]
    fn observe_emits_the_stable_dotted_names() {
        #[derive(Default)]
        struct Names(Vec<(String, Vec<(String, String)>)>);
        impl MetricSink for Names {
            fn counter(&mut self, name: &str, _h: &str, labels: &[(&str, &str)], _v: u64) {
                self.0.push((
                    name.to_string(),
                    labels
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .collect(),
                ));
            }
            fn gauge(&mut self, name: &str, _h: &str, _l: &[(&str, &str)], _v: f64) {
                self.0.push((name.to_string(), Vec::new()));
            }
            fn histogram(
                &mut self,
                name: &str,
                _h: &str,
                _l: &[(&str, &str)],
                _s: &HistogramSnapshot,
            ) {
                self.0.push((format!("hist:{name}"), Vec::new()));
            }
        }
        let m = NetMetrics::new();
        m.record_request();
        let mut sink = Names::default();
        m.observe(&mut sink);
        let names: Vec<&str> = sink.0.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"san.net.conns"));
        assert!(names.contains(&"san.net.requests"));
        assert!(names.contains(&"san.net.decode_errors"));
        assert!(names.contains(&"hist:san.net.request_latency"));
        // One responses series per typed outcome.
        let outcomes: Vec<&str> = sink
            .0
            .iter()
            .filter(|(n, _)| n == "san.net.responses")
            .flat_map(|(_, labels)| labels.iter().map(|(_, v)| v.as_str()))
            .collect();
        assert_eq!(
            outcomes,
            [
                "served",
                "busy",
                "no_snapshot",
                "node_out_of_range",
                "store_failed",
                "bad_request",
                "shutting_down"
            ]
        );
    }

    #[test]
    fn counters_start_zero_and_count() {
        let m = NetMetrics::new();
        assert_eq!(m.requests(), 0);
        m.record_request();
        m.record_request();
        m.record_busy();
        assert_eq!(m.requests(), 2);
        assert_eq!(m.busy(), 1);
        assert_eq!(m.served(), 0);
        m.record_request_latency(Duration::from_micros(3));
        assert_eq!(m.request_latency().count(), 1);
    }
}
