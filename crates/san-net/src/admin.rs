//! Admin HTTP listener: `GET /metrics` (Prometheus text exposition)
//! and `GET /slowlog` (the trace ring's slow-query dump) over a
//! deliberately minimal HTTP/1.0 — enough for `curl` and a Prometheus
//! scraper, nothing more.
//!
//! Like the wire protocol, the request parser sits on an
//! **untrusted-bytes boundary**: anything can connect to the admin
//! port. The same discipline applies — the header read is capped at
//! [`MAX_HEAD_BYTES`] and bounded by a deadline before any parsing, a
//! malformed request gets a typed status line (`400`/`404`/`405`) and a
//! closed connection, and nothing here panics on wire input.
//!
//! Connections are served sequentially on the one admin thread: the
//! endpoints are point-in-time dumps for an operator or a scraper, not
//! a data plane, and a single thread keeps the listener from ever
//! competing with the worker pool for cores. The per-connection
//! deadline bounds how long a slow client can hold the thread.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Hard cap on the bytes read while hunting for the end of the request
/// head (`\r\n\r\n`). Real scrape requests are well under 200 bytes.
pub(crate) const MAX_HEAD_BYTES: usize = 4096;

/// How long one admin connection may take end to end.
const CONN_DEADLINE: Duration = Duration::from_secs(2);

/// What the admin endpoints need from the server: the stop flag and
/// the two dump bodies. `server::Shared` implements it; tests stub it.
pub(crate) trait AdminState {
    /// True once shutdown began (the accept loop exits).
    fn stopping(&self) -> bool;
    /// The `/metrics` body: Prometheus text exposition (v0.0.4).
    fn metrics_text(&self) -> String;
    /// The `/slowlog` body: the slow-query log dump.
    fn slowlog_text(&self) -> String;
}

/// Serves admin connections until [`AdminState::stopping`] turns true
/// (the shutdown handshake wakes the blocking accept with a loopback
/// no-op connection, mirroring the main acceptor).
pub(crate) fn admin_loop<S: AdminState>(state: &S, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.stopping() {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        serve_conn(state, stream);
    }
}

/// Reads one request head, answers it, closes the connection.
fn serve_conn<S: AdminState>(state: &S, stream: TcpStream) {
    let deadline = Instant::now() + CONN_DEADLINE;
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
        || stream.set_write_timeout(Some(CONN_DEADLINE)).is_err()
    {
        return;
    }
    let Some(head) = read_head(&stream, deadline) else {
        // Dribbled past the deadline, oversized, or died mid-head: no
        // parseable request, nothing to answer.
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    let (status, content_type, body) = route(&head, state);
    respond(&stream, status, content_type, &body);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads until the `\r\n\r\n` head terminator, the size cap, or the
/// deadline. Returns `None` when no complete head arrived in time.
fn read_head(mut stream: &TcpStream, deadline: Instant) -> Option<Vec<u8>> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return Some(head);
        }
        if head.len() >= MAX_HEAD_BYTES || Instant::now() >= deadline {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            // BOUNDS: `read` reports at most `chunk.len()` bytes, so the
            // `..n` slice is in range.
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if crate::server::is_timeout(&e) => {}
            Err(_) => return None,
        }
    }
}

/// Maps a request head to `(status line, content type, body)`.
fn route<S: AdminState>(head: &[u8], state: &S) -> (&'static str, &'static str, String) {
    const TEXT: &str = "text/plain; charset=utf-8";
    // The content type Prometheus scrapers expect for the text format.
    const EXPOSITION: &str = "text/plain; version=0.0.4";
    let Ok(text) = std::str::from_utf8(head) else {
        return ("400 Bad Request", TEXT, "bad request\n".to_string());
    };
    let mut request_line = text.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (
        request_line.next().unwrap_or(""),
        request_line.next().unwrap_or(""),
    );
    if method.is_empty() || path.is_empty() {
        return ("400 Bad Request", TEXT, "bad request\n".to_string());
    }
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            TEXT,
            "only GET is supported\n".to_string(),
        );
    }
    match path {
        "/metrics" => ("200 OK", EXPOSITION, state.metrics_text()),
        "/slowlog" => ("200 OK", TEXT, state.slowlog_text()),
        _ => (
            "404 Not Found",
            TEXT,
            "try /metrics or /slowlog\n".to_string(),
        ),
    }
}

/// Writes one HTTP/1.0 response, best effort (an admin client that
/// vanished mid-write costs nothing).
fn respond(mut stream: &TcpStream, status: &str, content_type: &str, body: &str) {
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(header.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub;

    impl AdminState for Stub {
        fn stopping(&self) -> bool {
            false
        }
        fn metrics_text(&self) -> String {
            "# TYPE t counter\nt 1\n".to_string()
        }
        fn slowlog_text(&self) -> String {
            "slowlog capacity=1 recorded=0 dropped=0\n".to_string()
        }
    }

    #[test]
    fn routing_covers_both_endpoints_and_rejects_the_rest() {
        let (status, ct, body) = route(b"GET /metrics HTTP/1.0\r\n\r\n", &Stub);
        assert_eq!(status, "200 OK");
        assert!(ct.contains("version=0.0.4"));
        assert!(body.contains("# TYPE"));

        let (status, _, body) = route(b"GET /slowlog HTTP/1.1\r\nHost: x\r\n\r\n", &Stub);
        assert_eq!(status, "200 OK");
        assert!(body.starts_with("slowlog"));

        let (status, _, _) = route(b"GET /nope HTTP/1.0\r\n\r\n", &Stub);
        assert_eq!(status, "404 Not Found");

        let (status, _, _) = route(b"POST /metrics HTTP/1.0\r\n\r\n", &Stub);
        assert_eq!(status, "405 Method Not Allowed");

        let (status, _, _) = route(b"\r\n\r\n", &Stub);
        assert_eq!(status, "400 Bad Request");

        let (status, _, _) = route(&[0xFF, 0xFE, b'\r', b'\n'], &Stub);
        assert_eq!(status, "400 Bad Request");
    }
}
