//! [`NetServer`]: the TCP front-end — an acceptor thread feeding a
//! bounded connection queue, a thread-per-core worker pool serving
//! request/response over each connection, admission control at both the
//! connection and the request level, and graceful drain on shutdown.
//!
//! ## Overload behaviour (never a hang)
//!
//! Three independent admission gates, each answering with a typed
//! [`ErrorCode`] instead of queueing unboundedly:
//!
//! 1. **connection-level** — the acceptor's [`ConnQueue`] is bounded by
//!    [`NetConfig::accept_backlog`]; a full queue answers the new
//!    connection `Busy` and closes it;
//! 2. **in-flight cap** — at most [`NetConfig::max_inflight`] requests
//!    execute concurrently ([`InflightGate`]); excess requests get
//!    `Busy` on their own connection, which stays usable;
//! 3. **resident-byte budget** — a request whose day is *not* cached
//!    while the snapshot cache is at or above its configured
//!    [`max_resident_bytes`](san_serve::ServeConfig::max_resident_bytes)
//!    gets `Busy` rather than forcing an eviction storm (cached days
//!    keep serving throughout).
//!
//! ## Shutdown handshake
//!
//! [`NetServer::shutdown`] (also run on drop) sets the stop flag, wakes
//! the acceptor with a loopback no-op connection, stops the queue
//! (waking every idle worker), answers each still-queued connection
//! `ShuttingDown`, and joins all threads. Workers poll the stop flag
//! between frames (with a short read timeout), finish the request they
//! are on, and exit — the drain the `loom-lite` model suite
//! (`model_tests.rs`) checks never strands a worker or double-serves a
//! queued connection.

use crate::admin::{admin_loop, AdminState};
use crate::exec::execute;
use crate::metrics::NetMetrics;
use crate::pool::{ConnQueue, InflightGate};
use crate::proto::{
    ErrorCode, NetError, Query, QueryResult, Request, Response, MAX_STATS_BYTES,
    REQUEST_HEADER_BYTES,
};
use san_obs::{
    encode_prometheus, render_slowlog, FetchClass, MetricRegistry, MetricSink, Observe,
    RequestTrace, Stage, TraceRing,
};
use san_serve::{FetchKind, SnapshotServer};
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Sizing knobs for a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Worker threads serving connections (clamped to ≥ 1). The default
    /// is one per core (`available_parallelism`).
    pub workers: usize,
    /// Connections the acceptor may queue ahead of the workers (clamped
    /// to ≥ 1); beyond it new connections are answered `Busy`. Default:
    /// 64.
    pub accept_backlog: usize,
    /// Requests allowed to execute concurrently; excess requests are
    /// answered `Busy`. `0` rejects every request (a drain mode the
    /// overload tests use). Default: `2 × workers`.
    pub max_inflight: u64,
    /// How often idle workers re-check the stop flag (the read timeout
    /// on waiting connections). Default: 25 ms.
    pub poll_interval: Duration,
    /// How long a started frame may take to arrive in full before the
    /// connection is dropped (slow-trickle defence). Default: 2 s.
    pub frame_deadline: Duration,
    /// Address for the admin HTTP listener (`GET /metrics`,
    /// `GET /slowlog`); `None` disables it. Use port 0 for an ephemeral
    /// port — see [`NetServer::admin_addr`]. Default: `None`.
    pub admin: Option<SocketAddr>,
    /// Per-request tracing into the slow-query ring. Off, requests skip
    /// every trace clock read (the bench compares both modes). Default:
    /// on.
    pub trace: bool,
    /// Slots in the slow-query ring — how many recent traces
    /// `/slowlog` can dump (clamped to ≥ 1). Default: 64.
    pub slowlog_capacity: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        let cores = thread::available_parallelism().map_or(1, usize::from);
        NetConfig {
            workers: cores,
            accept_backlog: 64,
            max_inflight: 2 * cores as u64,
            poll_interval: Duration::from_millis(25),
            frame_deadline: Duration::from_secs(2),
            admin: None,
            trace: true,
            slowlog_capacity: 64,
        }
    }
}

/// How many slow-query entries one `/slowlog` dump renders.
const SLOWLOG_DUMP: usize = 32;

/// State shared by the acceptor, the workers, the admin listener, and
/// the handle.
pub(crate) struct Shared {
    snaps: SnapshotServer,
    queue: ConnQueue<TcpStream>,
    gate: InflightGate,
    metrics: NetMetrics,
    stop: AtomicBool,
    poll_interval: Duration,
    frame_deadline: Duration,
    /// All three layers' meters, registered once at startup; scraped by
    /// `/metrics`, the SANW `stats` query, and `NetServer::registry`.
    registry: MetricRegistry,
    /// The slow-query ring finished traces land in.
    ring: TraceRing,
    /// Whether workers carry a [`RequestTrace`] per request.
    trace: bool,
}

impl Shared {
    fn stopping(&self) -> bool {
        // ORDERING: Relaxed — the stop flag is advisory (workers also
        // learn of shutdown through the queue's mutex, which carries the
        // synchronisation); a slightly stale read only delays one
        // poll-interval tick.
        self.stop.load(Ordering::Relaxed)
    }

    /// One consistent metrics snapshot as Prometheus text exposition,
    /// clamped to the wire bound — the single source `/metrics` and the
    /// SANW `stats` query both serve.
    fn stats_text(&self) -> String {
        clamp_stats(encode_prometheus(&self.registry))
    }
}

impl AdminState for Shared {
    fn stopping(&self) -> bool {
        Shared::stopping(self)
    }

    fn metrics_text(&self) -> String {
        self.stats_text()
    }

    fn slowlog_text(&self) -> String {
        render_slowlog(&self.ring, SLOWLOG_DUMP)
    }
}

/// Truncates an exposition document to [`MAX_STATS_BYTES`] at a char
/// boundary (the registry would need thousands of series to get near
/// the bound; the clamp keeps the encoder total even then).
fn clamp_stats(mut text: String) -> String {
    let max = MAX_STATS_BYTES as usize;
    if text.len() > max {
        let mut cut = max;
        while cut > 0 && !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
    }
    text
}

/// [`Observe`] adapters holding the server weakly: registered sources
/// must be `Arc<dyn Observe>`, but the meters live inside [`Shared`]
/// (which owns the registry — `Arc::new_cyclic` breaks the cycle, and
/// the `Weak` keeps drop order a non-issue).
struct VaultObs(Weak<Shared>);

impl Observe for VaultObs {
    fn observe(&self, sink: &mut dyn MetricSink) {
        if let Some(shared) = self.0.upgrade() {
            shared.snaps.vault().metrics().observe(sink);
        }
    }
}

/// See [`VaultObs`].
struct ServeObs(Weak<Shared>);

impl Observe for ServeObs {
    fn observe(&self, sink: &mut dyn MetricSink) {
        if let Some(shared) = self.0.upgrade() {
            shared.snaps.metrics().observe(sink);
        }
    }
}

/// See [`VaultObs`].
struct NetObs(Weak<Shared>);

impl Observe for NetObs {
    fn observe(&self, sink: &mut dyn MetricSink) {
        if let Some(shared) = self.0.upgrade() {
            shared.metrics.observe(sink);
        }
    }
}

/// The running TCP front-end. Dropping the handle shuts the server
/// down gracefully (prefer calling [`shutdown`](NetServer::shutdown)
/// explicitly).
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    acceptor: Option<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`addr`](NetServer::addr)) and starts serving `snaps` with
    /// `config`'s pool sizing. When [`NetConfig::admin`] is set, also
    /// binds the admin HTTP listener there.
    pub fn serve(
        snaps: SnapshotServer,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let admin_listener = match config.admin {
            Some(admin) => Some(TcpListener::bind(admin)?),
            None => None,
        };
        let admin_addr = match &admin_listener {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };
        let shared = Arc::new_cyclic(|weak: &Weak<Shared>| {
            let mut registry = MetricRegistry::builder();
            registry.register(&[("layer", "vault")], Arc::new(VaultObs(weak.clone())));
            registry.register(&[("layer", "serve")], Arc::new(ServeObs(weak.clone())));
            registry.register(&[("layer", "net")], Arc::new(NetObs(weak.clone())));
            Shared {
                snaps,
                queue: ConnQueue::new(config.accept_backlog),
                gate: InflightGate::new(config.max_inflight),
                metrics: NetMetrics::new(),
                stop: AtomicBool::new(false),
                poll_interval: config.poll_interval.max(Duration::from_millis(1)),
                frame_deadline: config.frame_deadline.max(Duration::from_millis(10)),
                registry: registry.build(),
                ring: TraceRing::new(config.slowlog_capacity),
                trace: config.trace,
            }
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || acceptor_loop(&shared, listener))
        };
        let admin = admin_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || admin_loop(&*shared, listener))
        });
        Ok(NetServer {
            shared,
            addr,
            admin_addr,
            acceptor: Some(acceptor),
            admin,
            workers,
        })
    }

    /// The bound address (the resolved ephemeral port when bound to
    /// port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The front-end meters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// The snapshot server being fronted.
    pub fn snapshots(&self) -> &SnapshotServer {
        &self.shared.snaps
    }

    /// The admin HTTP listener's bound address, when one was configured
    /// (the resolved ephemeral port when bound to port 0).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The metric registry covering all three layers (vault, serve,
    /// net) — what `/metrics` and the SANW `stats` query scrape.
    pub fn registry(&self) -> &MetricRegistry {
        &self.shared.registry
    }

    /// The slow-query ring (what `/slowlog` dumps).
    pub fn trace_ring(&self) -> &TraceRing {
        &self.shared.ring
    }

    /// One metrics snapshot as Prometheus text exposition — the exact
    /// document `/metrics` serves.
    pub fn stats_text(&self) -> String {
        self.shared.stats_text()
    }

    /// Graceful shutdown: stop accepting, answer queued connections
    /// `ShuttingDown`, let in-flight requests finish, join every
    /// thread. Never hangs: idle workers notice within one poll
    /// interval.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // ORDERING: Relaxed — see `Shared::stopping`; `queue.stop()`
        // below is the synchronised part of the handshake.
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake the acceptors out of their blocking accepts with no-op
        // loopback connections; they re-check the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(admin_addr) = self.admin_addr {
            let _ = TcpStream::connect(admin_addr);
        }
        for stream in self.shared.queue.stop() {
            refuse(stream, ErrorCode::ShuttingDown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(admin) = self.admin.take() {
            let _ = admin.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Best-effort typed farewell on a connection the pool won't serve.
fn refuse(stream: TcpStream, code: ErrorCode) {
    let _ = Response::err(0, code).write_to(&mut &stream);
    let _ = stream.shutdown(Shutdown::Both);
}

fn acceptor_loop(shared: &Shared, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.stopping() {
            // The waking no-op connection (or any late arrival) lands
            // here; just drop it and exit — the listener closes with us.
            break;
        }
        let Ok(stream) = stream else {
            // Transient accept failure (e.g. the peer aborted between
            // SYN and accept); keep serving.
            continue;
        };
        let _ = stream.set_nodelay(true);
        match shared.queue.push(stream) {
            Ok(()) => shared.metrics.record_accepted_conn(),
            Err(stream) => {
                shared.metrics.record_rejected_conn();
                let code = if shared.stopping() {
                    ErrorCode::ShuttingDown
                } else {
                    ErrorCode::Busy
                };
                refuse(stream, code);
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        handle_conn(shared, stream);
    }
}

/// Serves one connection until the peer closes, the frame stream
/// breaks, or the server drains.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    if stream.set_read_timeout(Some(shared.poll_interval)).is_err() {
        return;
    }
    let mut probe = [0u8; 1];
    loop {
        if shared.stopping() {
            let _ = Response::err(0, ErrorCode::ShuttingDown).write_to(&mut &stream);
            break;
        }
        // Poll for the next frame without consuming: a timeout here
        // leaves no partial read behind, so the stop flag can be
        // re-checked between frames with the stream intact.
        match stream.peek(&mut probe) {
            Ok(0) => break, // peer closed
            Ok(_) => {}
            Err(e) if is_timeout(&e) => continue,
            Err(_) => break,
        }
        // A frame is arriving: start its trace before the first byte is
        // consumed, so the decode stage includes the socket read.
        let mut trace = shared
            .trace
            .then(|| RequestTrace::begin(shared.ring.next_request_id()));
        match read_request(shared, &stream) {
            Ok(Some(request)) => {
                if let Some(t) = trace.as_mut() {
                    t.decoded(request.day, request.query.id());
                    t.stage(Stage::Decode);
                }
                let response = serve_one(shared, request, trace.as_mut());
                let wrote = response.write_to(&mut &stream);
                if let Some(mut t) = trace {
                    t.stage(Stage::Encode);
                    shared.ring.record(&t.finish(outcome_of(&response)));
                }
                if wrote.is_err() {
                    break;
                }
            }
            Ok(None) => break, // clean close raced the peek
            Err(NetError::Io(_)) => break,
            Err(_) => {
                // Malformed frame: count the attempt and its typed
                // outcome; the stream can no longer be framed, so answer
                // once (best-effort) and close.
                shared.metrics.record_request();
                shared.metrics.record_decode_error();
                shared.metrics.record_bad_request();
                let _ = Response::err(0, ErrorCode::BadRequest).write_to(&mut &stream);
                if let Some(mut t) = trace {
                    t.stage(Stage::Decode);
                    shared.ring.record(&t.finish(ErrorCode::BadRequest as u8));
                }
                break;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// The wire outcome byte a finished trace records: 0 for served, else
/// the error code.
fn outcome_of(response: &Response) -> u8 {
    match response.error_code() {
        None => 0,
        Some(code) => code as u8,
    }
}

pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Fills `buf`, retrying read timeouts until `deadline`. `Ok(false)` is
/// a clean EOF before the first byte.
fn read_exact_deadline(
    mut stream: &TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    section: &'static str,
) -> Result<bool, NetError> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(NetError::Truncated { section });
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    // A started frame that trickles past the deadline is
                    // indistinguishable from a stalled peer: typed
                    // truncation, connection closed — never a hang.
                    return Err(NetError::Truncated { section });
                }
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one request frame: header first, then — only after the
/// header's declared params length passes its bounds — the params.
fn read_request(shared: &Shared, stream: &TcpStream) -> Result<Option<Request>, NetError> {
    let deadline = Instant::now() + shared.frame_deadline;
    let mut frame = vec![0u8; REQUEST_HEADER_BYTES];
    if !read_exact_deadline(stream, &mut frame, deadline, "request header")? {
        return Ok(None);
    }
    let params_len = Request::params_len(&frame)?;
    frame.resize(REQUEST_HEADER_BYTES + params_len, 0);
    if params_len > 0
        && !read_exact_deadline(
            stream,
            &mut frame[REQUEST_HEADER_BYTES..],
            deadline,
            "request params",
        )?
    {
        return Err(NetError::Truncated {
            section: "request params",
        });
    }
    Request::decode(&frame).map(|(request, _)| Some(request))
}

/// Decode → admit → execute → encode for one request. Every path
/// returns a typed response; the latency histogram sees all of them.
fn serve_one(shared: &Shared, request: Request, trace: Option<&mut RequestTrace>) -> Response {
    let started = Instant::now();
    shared.metrics.record_request();
    let response = admit_and_execute(shared, request, trace);
    shared.metrics.record_request_latency(started.elapsed());
    response
}

/// Attributes the time since the trace's last mark to `stage`, when a
/// trace is being carried.
fn mark(trace: &mut Option<&mut RequestTrace>, stage: Stage) {
    if let Some(t) = trace.as_deref_mut() {
        t.stage(stage);
    }
}

fn admit_and_execute(
    shared: &Shared,
    request: Request,
    mut trace: Option<&mut RequestTrace>,
) -> Response {
    let query_id = request.query.id();
    if shared.stopping() {
        shared.metrics.record_shutting_down();
        mark(&mut trace, Stage::Admission);
        return Response::err(query_id, ErrorCode::ShuttingDown);
    }
    // A stats query answers from the registry ahead of the in-flight
    // gate: the scrape needs no snapshot and must stay observable while
    // the server is shedding `Busy` — overload is exactly when the
    // metrics matter.
    if matches!(request.query, Query::Stats) {
        mark(&mut trace, Stage::Admission);
        let text = shared.stats_text();
        shared.metrics.record_served();
        mark(&mut trace, Stage::Execute);
        return Response::Ok {
            day_served: 0,
            result: QueryResult::Stats(text),
        };
    }
    // Gate 2: in-flight cap. The permit spans snapshot fetch +
    // execution.
    let Some(_permit) = shared.gate.try_enter() else {
        shared.metrics.record_busy();
        mark(&mut trace, Stage::Admission);
        return Response::err(query_id, ErrorCode::Busy);
    };
    let Some(day) = shared.snaps.vault().nearest_at_or_before(request.day) else {
        shared.metrics.record_no_snapshot();
        mark(&mut trace, Stage::Admission);
        return Response::err(query_id, ErrorCode::NoSnapshot);
    };
    // Gate 3: resident-byte budget. A cold day while the cache is at
    // budget would evict a hot one under load — shed instead. Cached
    // days keep serving.
    if !shared.snaps.is_cached(day)
        && shared.snaps.resident_bytes() >= shared.snaps.config().max_resident_bytes
    {
        shared.metrics.record_busy();
        mark(&mut trace, Stage::Admission);
        return Response::err(query_id, ErrorCode::Busy);
    }
    mark(&mut trace, Stage::Admission);
    match shared.snaps.get_exact_kind(day) {
        Err(_) => {
            shared.metrics.record_store_failed();
            mark(&mut trace, Stage::Fetch);
            Response::err(query_id, ErrorCode::StoreFailed)
        }
        Ok((handle, kind)) => {
            if let Some(t) = trace.as_deref_mut() {
                t.fetched(match kind {
                    FetchKind::Hit => FetchClass::Hit,
                    FetchKind::ColdMap => FetchClass::ColdMap,
                    FetchKind::DedupWait => FetchClass::DedupWait,
                });
            }
            mark(&mut trace, Stage::Fetch);
            let result = execute(request.query, &handle.view());
            mark(&mut trace, Stage::Execute);
            match result {
                Ok(result) => {
                    shared.metrics.record_served();
                    Response::Ok {
                        day_served: handle.day(),
                        result,
                    }
                }
                Err(code) => {
                    if code == ErrorCode::NodeOutOfRange {
                        shared.metrics.record_node_out_of_range();
                    }
                    Response::err(query_id, code)
                }
            }
        }
    }
}
