//! Observability integration suite: the outcome-counter accounting
//! equation over real wire traffic, the SANW `stats` query and the
//! admin HTTP `/metrics` endpoint serving the same metric families,
//! the `/slowlog` dump, and per-request trace attribution staying
//! within the 10% acceptance gate of end-to-end latency.

#![cfg(unix)]

use san_graph::store::SnapshotVault;
use san_graph::{SanTimeline, TimelineBuilder};
use san_net::proto::{ErrorCode, Query, QueryResult, Request, Response};
use san_net::server::{NetConfig, NetServer};
use san_net::NetClient;
use san_serve::{ServeConfig, SnapshotServer};
use san_stats::SplitRng;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// A fresh scratch directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "san-obs-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A growing timeline with reciprocated links and attributes.
fn growing_timeline(days: u32) -> SanTimeline {
    let mut rng = SplitRng::new(u64::from(days) + 71);
    let mut tb = TimelineBuilder::new();
    let mut users = vec![tb.add_social_node()];
    let attrs: Vec<_> = (0..4)
        .map(|i| tb.add_attr_node(san_graph::AttrType::PAPER_TYPES[i]))
        .collect();
    for day in 1..=days {
        tb.advance_to_day(day);
        for _ in 0..4 {
            let u = tb.add_social_node();
            let v = users[rng.below(users.len() as u64) as usize];
            tb.add_social_link(u, v);
            if rng.chance(0.5) {
                tb.add_social_link(v, u);
            }
            if rng.chance(0.4) {
                tb.add_attr_link(u, attrs[rng.below(attrs.len() as u64) as usize]);
            }
            users.push(u);
        }
    }
    tb.finish().0
}

/// A server whose vault holds only day 7 — days before it answer
/// `NoSnapshot`, which the accounting test needs.
fn start_day7(tag: &str, net: NetConfig) -> (TempDir, NetServer) {
    let tmp = TempDir::new(tag);
    let tl = growing_timeline(20);
    let mut vault = SnapshotVault::create(&tmp.0).expect("create vault");
    vault.save_day(7, &tl.snapshot_csr(7)).expect("persist");
    let snaps = SnapshotServer::from_vault(
        SnapshotVault::open(&tmp.0).expect("reopen"),
        ServeConfig::default(),
    );
    let server = NetServer::serve(snaps, "127.0.0.1:0", net).expect("bind loopback");
    (tmp, server)
}

fn client(server: &NetServer) -> NetClient {
    let client = NetClient::connect(server.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client
}

/// One raw admin HTTP/1.0 exchange; returns the full response text.
fn admin_get(server: &NetServer, path: &str) -> String {
    let addr = server.admin_addr().expect("admin listener configured");
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    text
}

/// The metric family names (`# TYPE` lines) of an exposition text —
/// the scrape-to-scrape invariant (values move, families don't).
fn families(exposition: &str) -> BTreeSet<String> {
    exposition
        .lines()
        .filter_map(|line| line.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_owned)
        .collect()
}

/// Every request outcome lands in exactly one counter: after a traffic
/// mix spanning served, no-snapshot, hostile-id, stats, and malformed
/// frames, the outcome counters sum to `requests`.
#[test]
fn outcome_counters_satisfy_the_accounting_equation() {
    let (_tmp, server) = start_day7("accounting", NetConfig::default());
    let mut c = client(&server);

    // served ×3 (two graph queries + one stats query).
    assert!(matches!(
        c.query(10, Query::Counts).expect("served"),
        Response::Ok { .. }
    ));
    assert!(matches!(
        c.query(7, Query::Reciprocity).expect("served"),
        Response::Ok { .. }
    ));
    assert!(matches!(
        c.query(0, Query::Stats).expect("stats"),
        Response::Ok {
            day_served: 0,
            result: QueryResult::Stats(_)
        }
    ));
    // no_snapshot ×1 (day before the only persisted snapshot).
    assert_eq!(
        c.query(3, Query::Counts).expect("pre-history"),
        Response::err(0, ErrorCode::NoSnapshot)
    );
    // node_out_of_range ×2.
    for _ in 0..2 {
        assert_eq!(
            c.query(9, Query::Degrees { u: u32::MAX }).expect("hostile"),
            Response::err(1, ErrorCode::NodeOutOfRange)
        );
    }
    // bad_request ×1: garbage bytes on a fresh connection. Close the
    // client first so a single-worker box frees its worker for it.
    drop(c);
    let mut garbage = TcpStream::connect(server.addr()).expect("connect");
    garbage
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    garbage
        .write_all(b"NOPE over the wire\r\n\r\n")
        .expect("write");
    assert_eq!(
        Response::read_from(&mut garbage).expect("farewell"),
        Some(Response::err(0, ErrorCode::BadRequest))
    );

    let m = server.metrics();
    assert_eq!(m.served(), 3);
    assert_eq!(m.no_snapshot(), 1);
    assert_eq!(m.node_out_of_range(), 2);
    assert_eq!(m.bad_request(), 1);
    assert_eq!(m.decode_errors(), 1);
    let outcomes = m.served()
        + m.busy()
        + m.no_snapshot()
        + m.node_out_of_range()
        + m.store_failed()
        + m.bad_request()
        + m.shutting_down();
    assert_eq!(outcomes, m.requests(), "an outcome escaped the equation");
    server.shutdown();
}

/// The SANW `stats` query and `GET /metrics` expose one registry: both
/// cover all three layers with full histogram buckets, and their metric
/// family sets are identical.
#[test]
fn stats_query_and_admin_metrics_expose_the_same_registry() {
    let net = NetConfig {
        admin: Some("127.0.0.1:0".parse().unwrap()),
        ..NetConfig::default()
    };
    let (_tmp, server) = start_day7("stats-vs-http", net);
    let mut c = client(&server);
    // Touch the vault so every layer has non-zero traffic to report.
    assert!(matches!(
        c.query(10, Query::Counts).expect("warm"),
        Response::Ok { .. }
    ));

    let wire_text = match c.query(0, Query::Stats).expect("stats query") {
        Response::Ok {
            day_served: 0,
            result: QueryResult::Stats(text),
        } => text,
        other => panic!("expected a stats payload, got {other:?}"),
    };
    // All three layers, with full bucket dumps.
    for needle in [
        "san_vault_",
        "san_serve_",
        "san_net_requests",
        "_bucket{",
        "le=\"+Inf\"",
        "layer=\"vault\"",
        "layer=\"serve\"",
        "layer=\"net\"",
    ] {
        assert!(wire_text.contains(needle), "stats payload missing {needle}");
    }

    let http = admin_get(&server, "/metrics");
    let (head, body) = http.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "head: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "missing exposition content type: {head}"
    );
    assert!(body.contains("san_net_requests"), "body lacks net layer");
    assert_eq!(
        families(body),
        families(&wire_text),
        "the two scrape surfaces disagree on metric families"
    );
    server.shutdown();
}

/// Admin endpoint smoke: `/slowlog` dumps the ring header plus traced
/// requests, unknown paths answer 404, non-GET answers 405 — and the
/// listener shuts down with the server.
#[test]
fn admin_slowlog_and_error_routes_behave() {
    let net = NetConfig {
        admin: Some("127.0.0.1:0".parse().unwrap()),
        slowlog_capacity: 8,
        ..NetConfig::default()
    };
    let (_tmp, server) = start_day7("admin-smoke", net);
    let admin_addr = server.admin_addr().expect("admin addr");
    let mut c = client(&server);
    for _ in 0..3 {
        assert!(matches!(
            c.query(10, Query::Counts).expect("traced query"),
            Response::Ok { .. }
        ));
    }

    let slowlog = admin_get(&server, "/slowlog");
    assert!(slowlog.starts_with("HTTP/1.0 200 OK"), "slowlog: {slowlog}");
    let body = slowlog.split_once("\r\n\r\n").expect("split").1;
    assert!(
        body.starts_with("slowlog capacity=8"),
        "unexpected slowlog header: {body}"
    );
    assert!(body.contains("total_ns="), "no traced entries: {body}");

    let missing = admin_get(&server, "/nope");
    assert!(missing.starts_with("HTTP/1.0 404"), "missing: {missing}");

    // Non-GET is refused with 405.
    let mut stream = TcpStream::connect(admin_addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(b"POST /metrics HTTP/1.0\r\n\r\n")
        .expect("write");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read");
    assert!(text.starts_with("HTTP/1.0 405"), "post: {text}");

    server.shutdown();
    assert!(
        TcpStream::connect(admin_addr).is_err(),
        "admin listener survived shutdown"
    );
}

/// The acceptance gate on attribution: for every traced request the
/// per-stage nanoseconds sum to no more than the end-to-end total, and
/// the unattributed gap stays within 10% of the total (plus a small
/// absolute slack for clock granularity on near-zero requests).
#[test]
fn trace_attribution_accounts_for_the_latency() {
    let (_tmp, server) = start_day7("attribution", NetConfig::default());
    let mut c = client(&server);
    for day in [10u32, 12, 14, 16, 18] {
        assert!(matches!(
            c.query(day, Query::Counts).expect("traced"),
            Response::Ok { .. }
        ));
        assert!(matches!(
            c.query(day, Query::Reciprocity).expect("traced"),
            Response::Ok { .. }
        ));
    }

    // The server records a trace *after* writing the response, so the
    // last one can trail the client's read by a moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.trace_ring().recorded() < 10 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let entries = server.trace_ring().snapshot();
    assert!(entries.len() >= 10, "only {} traces landed", entries.len());
    for e in &entries {
        let stages = e.stages_total_nanos();
        assert!(
            stages <= e.total_nanos,
            "stage sum {stages} exceeds total {} for request {}",
            e.total_nanos,
            e.request_id
        );
        let gap = e.total_nanos - stages;
        let allowed = e.total_nanos / 10 + 2_000;
        assert!(
            gap <= allowed,
            "request {}: unattributed gap {gap}ns exceeds {allowed}ns (total {}ns, stages {:?})",
            e.request_id,
            e.total_nanos,
            e.stage_nanos
        );
    }
    server.shutdown();
}

/// Tracing off: requests still serve, the ring stays empty, and the
/// malformed-frame path still reaches the bad-request counter.
#[test]
fn tracing_can_be_disabled_without_losing_counters() {
    let net = NetConfig {
        trace: false,
        ..NetConfig::default()
    };
    let (_tmp, server) = start_day7("untraced", net);
    let mut c = client(&server);
    assert!(matches!(
        c.query(10, Query::Counts).expect("untraced"),
        Response::Ok { .. }
    ));
    assert_eq!(server.trace_ring().recorded(), 0);
    assert_eq!(server.metrics().served(), 1);
    assert_eq!(server.metrics().requests(), 1);
    server.shutdown();
}

/// The oversized-head defence: an admin request that never finishes its
/// header is dropped without wedging the listener.
#[test]
fn admin_survives_an_unterminated_header() {
    let net = NetConfig {
        admin: Some("127.0.0.1:0".parse().unwrap()),
        ..NetConfig::default()
    };
    let (_tmp, server) = start_day7("admin-hostile", net);
    let admin_addr = server.admin_addr().expect("admin addr");

    // 8 KiB of header with no terminator: past MAX_HEAD_BYTES, the
    // listener closes the connection instead of buffering forever.
    let mut stream = TcpStream::connect(admin_addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let flood = vec![b'A'; 8192];
    let _ = stream.write_all(&flood);
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);

    // A well-formed scrape still works afterwards.
    let ok = admin_get(&server, "/metrics");
    assert!(ok.starts_with("HTTP/1.0 200 OK"), "after flood: {ok}");
    server.shutdown();
}

/// The stats request frame is byte-identical whatever `Request.day`
/// says, and the server ignores the day entirely.
#[test]
fn stats_ignores_the_requested_day() {
    let (_tmp, server) = start_day7("stats-day", NetConfig::default());
    let mut c = client(&server);
    for day in [0u32, 3, 7, 1 << 20] {
        let frame = Request {
            day,
            query: Query::Stats,
        }
        .encode();
        assert_eq!(frame.len(), san_net::proto::REQUEST_HEADER_BYTES);
        match c.query(day, Query::Stats).expect("stats") {
            Response::Ok {
                day_served: 0,
                result: QueryResult::Stats(text),
            } => assert!(text.contains("san_net_requests")),
            other => panic!("day {day}: {other:?}"),
        }
    }
    server.shutdown();
}
