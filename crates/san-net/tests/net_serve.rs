//! Loopback integration suite for the TCP front-end: end-to-end query
//! correctness against direct evaluation, nearest-day resolution over
//! the wire, typed rejections (hostile node ids, pre-history days,
//! malformed frames), all three overload gates answering `Busy` rather
//! than hanging, and graceful shutdown that drains workers.

#![cfg(unix)]

use san_graph::store::SnapshotVault;
use san_graph::{SanTimeline, TimelineBuilder};
use san_net::proto::{ErrorCode, NetError, Query, Request, Response};
use san_net::server::{NetConfig, NetServer};
use san_net::{execute, NetClient};
use san_serve::{ServeConfig, SnapshotServer};
use san_stats::SplitRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// A fresh scratch directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "san-net-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A 30-day growing timeline with reciprocated links and attributes.
fn growing_timeline(days: u32) -> SanTimeline {
    let mut rng = SplitRng::new(u64::from(days) + 23);
    let mut tb = TimelineBuilder::new();
    let mut users = vec![tb.add_social_node()];
    let attrs: Vec<_> = (0..4)
        .map(|i| tb.add_attr_node(san_graph::AttrType::PAPER_TYPES[i]))
        .collect();
    for day in 1..=days {
        tb.advance_to_day(day);
        for _ in 0..4 {
            let u = tb.add_social_node();
            let v = users[rng.below(users.len() as u64) as usize];
            tb.add_social_link(u, v);
            if rng.chance(0.5) {
                tb.add_social_link(v, u);
            }
            if rng.chance(0.4) {
                tb.add_attr_link(u, attrs[rng.below(attrs.len() as u64) as usize]);
            }
            users.push(u);
        }
    }
    tb.finish().0
}

/// Vault with every `step`-th day of a `days`-long timeline persisted.
fn served_vault(tag: &str, days: u32, step: u32) -> (TempDir, SanTimeline, Vec<u32>) {
    let tmp = TempDir::new(tag);
    let tl = growing_timeline(days);
    let mut vault = SnapshotVault::create(&tmp.0).expect("create vault");
    let saved = vault.save_timeline(&tl, step).expect("persist");
    (tmp, tl, saved)
}

fn start(tmp: &TempDir, serve: ServeConfig, net: NetConfig) -> NetServer {
    let snaps = SnapshotServer::open(&tmp.0, serve).expect("open vault");
    NetServer::serve(snaps, "127.0.0.1:0", net).expect("bind loopback")
}

fn client(server: &NetServer) -> NetClient {
    let client = NetClient::connect(server.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client
}

/// The full query surface over the wire matches direct evaluation on
/// the same snapshots, day by day.
#[test]
fn end_to_end_queries_match_direct_evaluation() {
    let (tmp, tl, saved) = served_vault("e2e", 30, 5);
    let server = start(&tmp, ServeConfig::default(), NetConfig::default());
    let mut client = client(&server);

    for &probe in &[0u32, 3, 5, 14, 30, 37] {
        let expect_day = saved.iter().copied().rfind(|&d| d <= probe).unwrap();
        let snap = tl.snapshot_csr(expect_day);
        // (query id, query) pairs — the id is what an error response
        // must echo. Node 1 exists only from day 1 on, so the day-0
        // snapshot exercises the error-mirroring branch.
        let queries = [
            (0u16, Query::Counts),
            (1, Query::Degrees { u: 1 }),
            (
                2,
                Query::OutNeighbors {
                    u: 1,
                    offset: 0,
                    limit: 8,
                },
            ),
            (3, Query::HasLink { src: 1, dst: 0 }),
            (4, Query::CommonNeighbors { u: 0, v: 1 }),
            (5, Query::Reciprocity),
            (6, Query::LocalClustering { u: 1 }),
        ];
        for (query_id, query) in queries {
            let response = client.query(probe, query).expect("query");
            let expected = match execute(query, &snap) {
                Ok(result) => Response::Ok {
                    day_served: expect_day,
                    result,
                },
                Err(code) => Response::err(query_id, code),
            };
            assert_eq!(response, expected, "probe day {probe} query {query:?}");
        }
    }
    assert_eq!(server.metrics().busy(), 0);
    assert!(server.metrics().served() > 0);
    assert!(server.metrics().request_latency().count() > 0);
    server.shutdown();
}

/// Days before the first persisted snapshot answer `NoSnapshot`;
/// hostile node ids answer `NodeOutOfRange`; the connection stays
/// usable after both.
#[test]
fn typed_rejections_leave_the_connection_usable() {
    let tmp = TempDir::new("typed-rej");
    let tl = growing_timeline(20);
    let mut vault = SnapshotVault::create(&tmp.0).expect("create");
    vault.save_day(7, &tl.snapshot_csr(7)).expect("save");
    let server = {
        let snaps = SnapshotServer::from_vault(
            SnapshotVault::open(&tmp.0).expect("reopen"),
            ServeConfig::default(),
        );
        NetServer::serve(snaps, "127.0.0.1:0", NetConfig::default()).expect("bind")
    };
    let mut c = client(&server);

    assert_eq!(
        c.query(6, Query::Counts).expect("pre-history query"),
        Response::err(0, ErrorCode::NoSnapshot)
    );
    assert_eq!(
        c.query(7, Query::Degrees { u: u32::MAX })
            .expect("hostile id"),
        Response::err(1, ErrorCode::NodeOutOfRange)
    );
    // Still usable: a valid query on the same connection succeeds.
    assert!(matches!(
        c.query(9, Query::Counts).expect("follow-up"),
        Response::Ok { day_served: 7, .. }
    ));
    assert_eq!(server.metrics().no_snapshot(), 1);
    assert_eq!(server.metrics().node_out_of_range(), 1);
    server.shutdown();
}

/// Gate 2 (in-flight cap) at zero: every request is a typed `Busy`,
/// delivered promptly — no hang, no panic, connection intact.
#[test]
fn inflight_cap_overload_is_typed_busy_never_a_hang() {
    let (tmp, _tl, _saved) = served_vault("busy-inflight", 10, 5);
    let net = NetConfig {
        max_inflight: 0,
        ..NetConfig::default()
    };
    let server = start(&tmp, ServeConfig::default(), net);
    let mut c = client(&server);
    for _ in 0..5 {
        assert_eq!(
            c.query(10, Query::Counts).expect("busy response"),
            Response::err(0, ErrorCode::Busy)
        );
    }
    assert_eq!(server.metrics().busy(), 5);
    assert_eq!(server.metrics().served(), 0);
    server.shutdown();
}

/// Gate 3 (resident-byte budget): with the cache budget at one byte, a
/// cold day beyond the first answers `Busy` while the already-cached
/// day keeps serving.
#[test]
fn memory_backpressure_sheds_cold_days_but_serves_cached_ones() {
    let (tmp, _tl, saved) = served_vault("busy-memory", 10, 5);
    assert!(saved.len() >= 2);
    let serve = ServeConfig {
        max_resident_bytes: 1,
        cache_shards: 1,
    };
    let server = start(&tmp, serve, NetConfig::default());
    let mut c = client(&server);

    // First day maps while the cache is empty (resident 0 < budget)…
    assert!(matches!(
        c.query(saved[0], Query::Counts).expect("first day"),
        Response::Ok { .. }
    ));
    // …a different, cold day now sheds…
    assert_eq!(
        c.query(saved[1], Query::Counts).expect("cold day"),
        Response::err(0, ErrorCode::Busy)
    );
    // …while the resident day keeps serving.
    assert!(matches!(
        c.query(saved[0], Query::Counts).expect("cached day"),
        Response::Ok { .. }
    ));
    assert_eq!(server.metrics().busy(), 1);
    assert_eq!(server.metrics().served(), 2);
    server.shutdown();
}

/// Gate 1 (accept backlog): one worker pinned to one connection, a
/// one-slot backlog, and a burst of extra connections — at least one
/// gets the connection-level `Busy` farewell, and the pinned
/// connection keeps serving throughout.
#[test]
fn accept_backlog_overflow_answers_busy_at_the_socket() {
    let (tmp, _tl, _saved) = served_vault("busy-accept", 10, 5);
    let net = NetConfig {
        workers: 1,
        accept_backlog: 1,
        ..NetConfig::default()
    };
    let server = start(&tmp, ServeConfig::default(), net);
    let mut pinned = client(&server);
    assert!(matches!(
        pinned.query(5, Query::Counts).expect("pinned"),
        Response::Ok { .. }
    ));

    // The single worker is now dedicated to `pinned`; burst past the
    // one-slot backlog.
    let burst: Vec<TcpStream> = (0..6)
        .map(|_| TcpStream::connect(server.addr()).expect("connect"))
        .collect();
    let mut busy_farewells = 0;
    for stream in &burst {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        match Response::read_from(&mut &*stream) {
            Ok(Some(Response::Err { query_id: 0, code })) => {
                assert!(matches!(code, ErrorCode::Busy | ErrorCode::ShuttingDown));
                busy_farewells += 1;
            }
            // A queued-but-never-served connection times out or sees
            // EOF at shutdown — that's the backlog slot, not overload.
            Ok(None) | Err(_) => {}
            Ok(Some(other)) => panic!("unsolicited non-farewell response: {other:?}"),
        }
    }
    assert!(busy_farewells >= 1, "no connection-level Busy observed");
    assert!(server.metrics().rejected_conns() >= 1);
    // The pinned connection never degraded.
    assert!(matches!(
        pinned.query(5, Query::Counts).expect("pinned again"),
        Response::Ok { .. }
    ));
    server.shutdown();
}

/// Malformed bytes on the wire: the server answers one typed
/// `BadRequest` (best effort), closes that connection, stays alive for
/// fresh ones, and counts the decode error.
#[test]
fn garbage_frames_are_rejected_without_killing_the_server() {
    let (tmp, _tl, _saved) = served_vault("garbage", 10, 5);
    let server = start(&tmp, ServeConfig::default(), NetConfig::default());

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    match Response::read_from(&mut stream) {
        Ok(Some(response)) => {
            assert_eq!(response, Response::err(0, ErrorCode::BadRequest));
        }
        other => panic!("expected a typed BadRequest farewell, got {other:?}"),
    }
    // The connection is closed after the farewell.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("eof"), 0);

    // A fresh, well-formed connection still serves.
    let mut c = client(&server);
    assert!(matches!(
        c.query(10, Query::Counts).expect("fresh conn"),
        Response::Ok { .. }
    ));
    assert_eq!(server.metrics().decode_errors(), 1);
    server.shutdown();
}

/// A truncated frame (header claims params that never arrive) trips
/// the frame deadline as a typed close, not a hang.
#[test]
fn half_a_frame_hits_the_deadline_not_a_hang() {
    let (tmp, _tl, _saved) = served_vault("half-frame", 10, 5);
    let net = NetConfig {
        frame_deadline: Duration::from_millis(100),
        ..NetConfig::default()
    };
    let server = start(&tmp, ServeConfig::default(), net);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let frame = Request {
        day: 5,
        query: Query::Degrees { u: 1 },
    }
    .encode();
    // Send the header but withhold the params forever.
    stream.write_all(&frame[..frame.len() - 2]).expect("write");
    // The server gives up within the deadline and closes; we observe
    // EOF (possibly after a BadRequest farewell) rather than hanging.
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest).expect("closed");
    server.shutdown();
}

/// Graceful shutdown: idle connections get a `ShuttingDown` farewell
/// or a clean close, every thread joins (shutdown returns), and the
/// port stops accepting.
#[test]
fn graceful_shutdown_drains_workers_and_closes_the_port() {
    let (tmp, _tl, _saved) = served_vault("shutdown", 10, 5);
    let server = start(&tmp, ServeConfig::default(), NetConfig::default());
    let addr = server.addr();
    let mut c = client(&server);
    assert!(matches!(
        c.query(10, Query::Counts).expect("pre-shutdown"),
        Response::Ok { .. }
    ));

    // Shutdown with the connection still open: must return (join all
    // workers + acceptor) without hanging.
    server.shutdown();

    // The idle connection was told, or simply closed — never left
    // dangling: the next query fails fast with a typed outcome.
    match c.query(10, Query::Counts) {
        Ok(response) => assert_eq!(response.error_code(), Some(ErrorCode::ShuttingDown)),
        Err(NetError::Truncated { .. } | NetError::Io(_)) => {}
        Err(other) => panic!("unexpected post-shutdown error: {other:?}"),
    }
    // The listener is gone.
    assert!(TcpStream::connect(addr).is_err());
}
