//! Property lockdown for the `SANW` frame codec: **encode → decode** is
//! the identity for request and response frames over adversarial
//! params/payloads (hostile node ids, extreme days, page-cap-sized
//! neighbour lists, f64 metric values), every encoded frame respects
//! the protocol's max-frame-size bounds, and the stream path agrees
//! with the in-memory path byte for byte. Case counts honour the
//! `PROPTEST_CASES` env cap (CI/Miri shrink it).

use proptest::prelude::*;
use san_net::proto::{
    Query, QueryResult, Request, Response, MAX_DAY, MAX_NEIGHBOR_PAGE, MAX_PAYLOAD_BYTES,
    MAX_REQUEST_FRAME_BYTES, MAX_RESPONSE_FRAME_BYTES, MAX_STATS_BYTES, REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
};
use std::io::Cursor;

/// Strings for stats payloads, built from a byte vector mapped through
/// a palette that covers ASCII, multi-byte UTF-8, and exposition
/// syntax (the vendored proptest has no string strategies).
fn arb_stats_text() -> impl Strategy<Value = String> {
    const PALETTE: [char; 16] = [
        'a', 'Z', '0', '_', ':', '.', ' ', '\n', '#', '{', '}', '"', '\\', '=', 'µ', '→',
    ];
    prop::collection::vec(any::<u8>(), 0..200usize).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| PALETTE[usize::from(b) % PALETTE.len()])
            .collect()
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        Just(Query::Counts),
        Just(Query::Reciprocity),
        Just(Query::Stats),
        any::<u32>().prop_map(|u| Query::Degrees { u }),
        any::<u32>().prop_map(|u| Query::LocalClustering { u }),
        (any::<u32>(), any::<u32>()).prop_map(|(src, dst)| Query::HasLink { src, dst }),
        (any::<u32>(), any::<u32>()).prop_map(|(u, v)| Query::CommonNeighbors { u, v }),
        (any::<u32>(), any::<u32>(), 0u32..=MAX_NEIGHBOR_PAGE)
            .prop_map(|(u, offset, limit)| { Query::OutNeighbors { u, offset, limit } }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0u32..=MAX_DAY, arb_query()).prop_map(|(day, query)| Request { day, query })
}

fn arb_result() -> impl Strategy<Value = QueryResult> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(social_nodes, attr_nodes, social_links, attr_links)| QueryResult::Counts {
                social_nodes,
                attr_nodes,
                social_links,
                attr_links,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(out, inc, attr)| QueryResult::Degrees { out, inc, attr }),
        (
            any::<u32>(),
            prop::collection::vec(any::<u32>(), 0..=64usize)
        )
            .prop_map(|(total, ids)| QueryResult::Neighbors { total, ids }),
        any::<bool>().prop_map(QueryResult::HasLink),
        any::<u64>().prop_map(QueryResult::CommonNeighbors),
        any::<f64>().prop_map(QueryResult::Reciprocity),
        any::<f64>().prop_map(QueryResult::LocalClustering),
        arb_stats_text().prop_map(QueryResult::Stats),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    (any::<u32>(), arb_result())
        .prop_map(|(day_served, result)| Response::Ok { day_served, result })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn request_roundtrips_and_respects_the_frame_bound(request in arb_request()) {
        let frame = request.encode();
        prop_assert!(frame.len() <= MAX_REQUEST_FRAME_BYTES);
        prop_assert!(frame.len() >= REQUEST_HEADER_BYTES);

        // In-memory path consumes exactly the frame.
        let (decoded, consumed) = Request::decode(&frame).unwrap();
        prop_assert_eq!((decoded, consumed), (request, frame.len()));

        // Stream path agrees.
        let mut cursor = Cursor::new(frame);
        prop_assert_eq!(Request::read_from(&mut cursor).unwrap(), Some(request));
        prop_assert_eq!(Request::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn response_roundtrips_and_respects_the_frame_bound(response in arb_response()) {
        let frame = response.encode();
        prop_assert!(frame.len() <= MAX_RESPONSE_FRAME_BYTES);
        prop_assert!(frame.len() >= RESPONSE_HEADER_BYTES);

        let (decoded, consumed) = Response::decode(&frame).unwrap();
        prop_assert_eq!(decoded, response.clone());
        prop_assert_eq!(consumed, frame.len());

        let mut cursor = Cursor::new(frame);
        prop_assert_eq!(Response::read_from(&mut cursor).unwrap(), Some(response));
        prop_assert_eq!(Response::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn mixed_request_streams_reframe_exactly(requests in prop::collection::vec(arb_request(), 1..12usize)) {
        // Concatenated frames — the bytes a server's socket actually
        // sees — re-split into exactly the original sequence.
        let mut bytes = Vec::new();
        for request in &requests {
            bytes.extend_from_slice(&request.encode());
        }
        let mut offset = 0;
        for request in &requests {
            let (decoded, consumed) = Request::decode(&bytes[offset..]).unwrap();
            prop_assert_eq!(decoded, *request);
            offset += consumed;
        }
        prop_assert_eq!(offset, bytes.len());
    }
}

/// The worst-case frames actually meet their declared bounds exactly —
/// the bounds are tight, not just safe.
#[test]
fn max_frame_bounds_are_tight() {
    // The largest non-stats payload: a full neighbour page.
    let page: Vec<u32> = (0..MAX_NEIGHBOR_PAGE).collect();
    let response = Response::Ok {
        day_served: MAX_DAY,
        result: QueryResult::Neighbors {
            total: u32::MAX,
            ids: page,
        },
    };
    let frame = response.encode();
    assert_eq!(
        frame.len() - RESPONSE_HEADER_BYTES,
        MAX_PAYLOAD_BYTES as usize
    );
    assert!(frame.len() <= MAX_RESPONSE_FRAME_BYTES);
    let (decoded, consumed) = Response::decode(&frame).unwrap();
    assert_eq!(consumed, frame.len());
    assert_eq!(decoded, response);

    // The largest frame of all: a bound-sized stats payload.
    let text = "x".repeat(MAX_STATS_BYTES as usize);
    let response = Response::Ok {
        day_served: 0,
        result: QueryResult::Stats(text),
    };
    let frame = response.encode();
    assert_eq!(frame.len(), MAX_RESPONSE_FRAME_BYTES);
    let (decoded, consumed) = Response::decode(&frame).unwrap();
    assert_eq!(consumed, frame.len());
    assert_eq!(decoded, response);

    // The largest v2 request is an out_neighbors query (12 params
    // bytes) — well inside the future-proofed request bound.
    let request = Request {
        day: MAX_DAY,
        query: Query::OutNeighbors {
            u: u32::MAX,
            offset: u32::MAX,
            limit: MAX_NEIGHBOR_PAGE,
        },
    };
    let frame = request.encode();
    assert_eq!(frame.len(), REQUEST_HEADER_BYTES + 12);
    assert!(frame.len() <= MAX_REQUEST_FRAME_BYTES);
}
