//! Wire-protocol corruption matrix, mirroring the snapshot store's
//! `store_corruption.rs`: every crafted mutation of a valid frame —
//! truncation at and inside every boundary, bad magic, bad version,
//! oversized length prefixes, unknown query ids and statuses,
//! day-out-of-range, malformed params/payloads — must be rejected with
//! a **typed [`NetError`]**, never a panic, on *both* decode paths
//! (in-memory [`Request::decode`]/[`Response::decode`] and the
//! stream-reading `read_from`).

use san_net::proto::{
    ErrorCode, NetError, Query, QueryResult, Request, Response, MAX_DAY, MAX_NEIGHBOR_PAGE,
    MAX_PARAMS_BYTES, MAX_PAYLOAD_BYTES, MAX_STATS_BYTES, REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
};
use std::io::Cursor;

/// One representative request per query kind — together they exercise
/// every params encoding.
fn sample_requests() -> Vec<Request> {
    let queries = [
        Query::Counts,
        Query::Degrees { u: 3 },
        Query::OutNeighbors {
            u: 1,
            offset: 2,
            limit: 64,
        },
        Query::HasLink { src: 0, dst: 9 },
        Query::CommonNeighbors { u: 4, v: 5 },
        Query::Reciprocity,
        Query::LocalClustering { u: 2 },
        Query::Stats,
    ];
    queries
        .into_iter()
        .map(|query| Request { day: 11, query })
        .collect()
}

/// One representative response per result kind, plus a typed error
/// response — together they exercise every payload encoding.
fn sample_responses() -> Vec<Response> {
    let results = [
        QueryResult::Counts {
            social_nodes: 10,
            attr_nodes: 3,
            social_links: 40,
            attr_links: 7,
        },
        QueryResult::Degrees {
            out: 4,
            inc: 2,
            attr: 1,
        },
        QueryResult::Neighbors {
            total: 5,
            ids: vec![1, 2, 3],
        },
        QueryResult::HasLink(true),
        QueryResult::CommonNeighbors(6),
        QueryResult::Reciprocity(0.625),
        QueryResult::LocalClustering(0.5),
        QueryResult::Stats("# TYPE san_net_requests counter\nsan_net_requests 5\n".to_string()),
    ];
    let mut responses: Vec<Response> = results
        .into_iter()
        .map(|result| Response::Ok {
            day_served: 9,
            result,
        })
        .collect();
    responses.push(Response::err(3, ErrorCode::Busy));
    responses
}

fn req_err(bytes: &[u8]) -> NetError {
    Request::decode(bytes).expect_err("crafted request frame must be rejected")
}

fn resp_err(bytes: &[u8]) -> NetError {
    Response::decode(bytes).expect_err("crafted response frame must be rejected")
}

/// The same crafted bytes through the stream path.
fn stream_req(bytes: &[u8]) -> Result<Option<Request>, NetError> {
    Request::read_from(&mut Cursor::new(bytes.to_vec()))
}

fn stream_resp(bytes: &[u8]) -> Result<Option<Response>, NetError> {
    Response::read_from(&mut Cursor::new(bytes.to_vec()))
}

fn with_u16_at(frame: &[u8], offset: usize, v: u16) -> Vec<u8> {
    let mut out = frame.to_vec();
    out[offset..offset + 2].copy_from_slice(&v.to_le_bytes());
    out
}

fn with_u32_at(frame: &[u8], offset: usize, v: u32) -> Vec<u8> {
    let mut out = frame.to_vec();
    out[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Baseline: the samples round-trip on both paths.
// ---------------------------------------------------------------------------

#[test]
fn samples_roundtrip_on_both_paths() {
    for request in sample_requests() {
        let frame = request.encode();
        assert_eq!(Request::decode(&frame).unwrap(), (request, frame.len()));
        assert_eq!(stream_req(&frame).unwrap(), Some(request));
    }
    for response in sample_responses() {
        let frame = response.encode();
        assert_eq!(
            Response::decode(&frame).unwrap(),
            (response.clone(), frame.len())
        );
        assert_eq!(stream_resp(&frame).unwrap(), Some(response));
    }
}

// ---------------------------------------------------------------------------
// Truncation at and inside every frame boundary.
// ---------------------------------------------------------------------------

#[test]
fn request_truncated_at_every_boundary_is_typed() {
    for request in sample_requests() {
        let frame = request.encode();
        for cut in 0..frame.len() {
            // In-memory path: every proper prefix is a typed truncation.
            assert!(
                matches!(req_err(&frame[..cut]), NetError::Truncated { .. }),
                "cut {cut}/{} of {:?}",
                frame.len(),
                request.query,
            );
            // Stream path: zero bytes is a clean close; anything else
            // mid-frame is a typed truncation.
            match stream_req(&frame[..cut]) {
                Ok(None) => assert_eq!(cut, 0, "clean close only before the first byte"),
                Err(NetError::Truncated { .. }) => assert!(cut > 0),
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn response_truncated_at_every_boundary_is_typed() {
    for response in sample_responses() {
        let frame = response.encode();
        for cut in 0..frame.len() {
            assert!(
                matches!(resp_err(&frame[..cut]), NetError::Truncated { .. }),
                "cut {cut}/{}",
                frame.len(),
            );
            match stream_resp(&frame[..cut]) {
                Ok(None) => assert_eq!(cut, 0),
                Err(NetError::Truncated { .. }) => assert!(cut > 0),
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Magic and version.
// ---------------------------------------------------------------------------

#[test]
fn bad_magic_is_rejected_with_the_found_bytes() {
    for request in sample_requests() {
        let frame = request.encode();
        for byte in 0..4 {
            let mut bad = frame.clone();
            bad[byte] ^= 0xFF;
            match req_err(&bad) {
                NetError::BadMagic { found } => assert_eq!(found.to_vec(), bad[..4].to_vec()),
                other => panic!("expected BadMagic, got {other:?}"),
            }
            assert!(matches!(stream_req(&bad), Err(NetError::BadMagic { .. })));
        }
    }
    let frame = sample_responses()[0].encode();
    let mut bad = frame.clone();
    bad[0] = b'X';
    assert!(matches!(resp_err(&bad), NetError::BadMagic { .. }));
    assert!(matches!(stream_resp(&bad), Err(NetError::BadMagic { .. })));
}

#[test]
fn wrong_version_is_rejected_with_the_found_version() {
    let frame = sample_requests()[1].encode();
    // v1 frames are rejected by a v2 peer — the policy's hard cutover.
    for version in [0u16, 1, 3, 0x7FFF, u16::MAX] {
        let bad = with_u16_at(&frame, 4, version);
        match req_err(&bad) {
            NetError::UnsupportedVersion { found } => assert_eq!(found, version),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }
    let frame = sample_responses()[0].encode();
    let bad = with_u16_at(&frame, 4, 1);
    assert!(matches!(
        resp_err(&bad),
        NetError::UnsupportedVersion { found: 1 }
    ));
}

// ---------------------------------------------------------------------------
// Unknown ids, statuses, and out-of-range days.
// ---------------------------------------------------------------------------

#[test]
fn unknown_query_id_is_rejected() {
    let frame = sample_requests()[0].encode();
    // 7 became `stats` in v2; the first unknown id is now 8.
    for id in [8u16, 42, 0x1000, u16::MAX] {
        let bad = with_u16_at(&frame, 6, id);
        match req_err(&bad) {
            NetError::UnknownQuery { id: found } => assert_eq!(found, id),
            other => panic!("expected UnknownQuery, got {other:?}"),
        }
        assert!(matches!(
            stream_req(&bad),
            Err(NetError::UnknownQuery { .. })
        ));
    }
}

#[test]
fn unknown_response_status_is_rejected() {
    let frame = sample_responses()[0].encode();
    for code in [7u16, 99, u16::MAX] {
        let bad = with_u16_at(&frame, 6, code);
        match resp_err(&bad) {
            NetError::UnknownStatus { code: found } => assert_eq!(found, code),
            other => panic!("expected UnknownStatus, got {other:?}"),
        }
    }
}

#[test]
fn ok_response_with_unknown_query_id_is_rejected() {
    let frame = sample_responses()[0].encode();
    let bad = with_u16_at(&frame, 8, 9);
    assert!(matches!(resp_err(&bad), NetError::UnknownQuery { id: 9 }));
}

#[test]
fn day_out_of_range_is_rejected() {
    let frame = sample_requests()[3].encode();
    for day in [MAX_DAY + 1, MAX_DAY * 2, u32::MAX] {
        let bad = with_u32_at(&frame, 8, day);
        match req_err(&bad) {
            NetError::DayOutOfRange { day: found } => assert_eq!(found, day),
            other => panic!("expected DayOutOfRange, got {other:?}"),
        }
    }
    // The boundary day itself is legal.
    let ok = with_u32_at(&frame, 8, MAX_DAY);
    assert_eq!(Request::decode(&ok).unwrap().0.day, MAX_DAY);
}

// ---------------------------------------------------------------------------
// Hostile length prefixes: rejected before any buffer is sized.
// ---------------------------------------------------------------------------

#[test]
fn oversized_params_length_is_frame_too_large() {
    let frame = sample_requests()[0].encode();
    for declared in [MAX_PARAMS_BYTES + 1, 1 << 20, u32::MAX] {
        let bad = with_u32_at(&frame, 12, declared);
        match req_err(&bad) {
            NetError::FrameTooLarge { declared: d, max } => {
                assert_eq!(d, declared);
                assert_eq!(max, MAX_PARAMS_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Stream path: the u32::MAX prefix must be rejected from the
        // 16 header bytes alone — a 4 GiB allocation attempt would OOM
        // long before EOF proved the frame short.
        assert!(matches!(
            stream_req(&bad[..REQUEST_HEADER_BYTES]),
            Err(NetError::FrameTooLarge { .. })
        ));
    }
}

#[test]
fn oversized_payload_length_is_frame_too_large() {
    let frame = sample_responses()[0].encode();
    for declared in [MAX_PAYLOAD_BYTES + 1, u32::MAX] {
        let bad = with_u32_at(&frame, 16, declared);
        match resp_err(&bad) {
            NetError::FrameTooLarge { declared: d, max } => {
                assert_eq!(d, declared);
                assert_eq!(max, MAX_PAYLOAD_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        assert!(matches!(
            stream_resp(&bad[..RESPONSE_HEADER_BYTES]),
            Err(NetError::FrameTooLarge { .. })
        ));
    }
}

/// Only query id 7 gets the larger stats payload bound; the bound is
/// still enforced, and still from the header alone on the stream path.
#[test]
fn stats_payload_bound_is_per_query() {
    let stats_frame = sample_responses()
        .into_iter()
        .find(|r| {
            matches!(
                r,
                Response::Ok {
                    result: QueryResult::Stats(_),
                    ..
                }
            )
        })
        .expect("stats sample")
        .encode();
    // A stats payload length over MAX_PAYLOAD_BYTES (but within the
    // stats bound) passes the header check — the truncated frame then
    // dies as a payload truncation, proving the header accepted it.
    let declared_ok = MAX_PAYLOAD_BYTES + 1;
    let bad = with_u32_at(&stats_frame, 16, declared_ok);
    assert!(matches!(
        resp_err(&bad),
        NetError::Truncated {
            section: "response payload"
        }
    ));
    // Over the stats bound: rejected at the header, before any buffer.
    for declared in [4 + MAX_STATS_BYTES + 1, u32::MAX] {
        let bad = with_u32_at(&stats_frame, 16, declared);
        match resp_err(&bad) {
            NetError::FrameTooLarge { declared: d, max } => {
                assert_eq!(d, declared);
                assert_eq!(max, 4 + MAX_STATS_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        assert!(matches!(
            stream_resp(&bad[..RESPONSE_HEADER_BYTES]),
            Err(NetError::FrameTooLarge { .. })
        ));
    }
}

/// The stats text-length prefix must agree with the payload length and
/// the bytes must be UTF-8.
#[test]
fn stats_payload_shape_violations_are_rejected() {
    let frame = Response::Ok {
        day_served: 0,
        result: QueryResult::Stats("abc".to_string()),
    }
    .encode();
    // Text length prefix disagreeing with the payload length.
    let bad = with_u32_at(&frame, RESPONSE_HEADER_BYTES, 2);
    assert!(matches!(
        resp_err(&bad),
        NetError::BadParams { query: "stats", .. }
    ));
    // Invalid UTF-8 in the text bytes.
    let mut bad = frame;
    *bad.last_mut().unwrap() = 0xC0;
    assert!(matches!(
        resp_err(&bad),
        NetError::BadParams { query: "stats", .. }
    ));
}

// ---------------------------------------------------------------------------
// Params/payload shape violations.
// ---------------------------------------------------------------------------

#[test]
fn params_length_not_matching_the_query_is_rejected() {
    // Counts declares 4 params bytes it must not have (frame extended
    // so the bytes exist — the length *mismatch* is the crime).
    let mut bad = with_u32_at(&sample_requests()[0].encode(), 12, 4);
    bad.extend_from_slice(&[0; 4]);
    assert!(matches!(req_err(&bad), NetError::BadParams { .. }));

    // Degrees declares 0 of its 4 params bytes.
    let bad = with_u32_at(&sample_requests()[1].encode(), 12, 0);
    assert!(matches!(req_err(&bad), NetError::BadParams { .. }));

    // OutNeighbors declares 8 of its 12.
    let bad = with_u32_at(&sample_requests()[2].encode(), 12, 8);
    assert!(matches!(req_err(&bad), NetError::BadParams { .. }));
}

#[test]
fn neighbor_page_limit_beyond_the_cap_is_rejected() {
    let request = Request {
        day: 0,
        query: Query::OutNeighbors {
            u: 0,
            offset: 0,
            limit: MAX_NEIGHBOR_PAGE,
        },
    };
    let frame = request.encode();
    // The cap itself is legal…
    assert!(Request::decode(&frame).is_ok());
    // …one past it is not (limit is the last params u32).
    let bad = with_u32_at(&frame, frame.len() - 4, MAX_NEIGHBOR_PAGE + 1);
    assert!(matches!(
        req_err(&bad),
        NetError::BadParams {
            query: "out_neighbors",
            ..
        }
    ));
}

#[test]
fn reserved_word_must_be_zero() {
    let frame = sample_responses()[0].encode();
    for reserved in [1u16, 0x8000, u16::MAX] {
        let bad = with_u16_at(&frame, 10, reserved);
        match resp_err(&bad) {
            NetError::ReservedNonZero { found } => assert_eq!(found, reserved),
            other => panic!("expected ReservedNonZero, got {other:?}"),
        }
    }
}

#[test]
fn error_response_with_payload_is_rejected() {
    let frame = Response::err(1, ErrorCode::Busy).encode();
    let mut bad = with_u32_at(&frame, 16, 8);
    bad.extend_from_slice(&[0; 8]);
    assert!(matches!(resp_err(&bad), NetError::BadParams { .. }));
}

#[test]
fn payload_length_not_matching_the_query_is_rejected() {
    // A counts payload of 31 bytes (truncated payload but honest
    // length prefix).
    let frame = sample_responses()[0].encode();
    let mut bad = with_u32_at(&frame, 16, 31);
    bad.truncate(RESPONSE_HEADER_BYTES + 31);
    assert!(matches!(resp_err(&bad), NetError::BadParams { .. }));

    // A has_link payload of 2 bytes.
    let frame = sample_responses()[3].encode();
    let mut bad = with_u32_at(&frame, 16, 2);
    bad.push(0);
    assert!(matches!(resp_err(&bad), NetError::BadParams { .. }));
}

#[test]
fn has_link_payload_byte_must_be_boolean() {
    let frame = sample_responses()[3].encode();
    for byte in [2u8, 7, 0xFF] {
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() = byte;
        assert!(matches!(
            resp_err(&bad),
            NetError::BadParams {
                query: "has_link",
                ..
            }
        ));
    }
}

#[test]
fn neighbor_count_violations_are_rejected() {
    let frame = Response::Ok {
        day_served: 1,
        result: QueryResult::Neighbors {
            total: 4,
            ids: vec![1, 2],
        },
    }
    .encode();
    // Declared id count beyond the page cap (payload bytes unchanged):
    // the count bound trips before any Vec is sized from it.
    let bad = with_u32_at(&frame, RESPONSE_HEADER_BYTES + 4, MAX_NEIGHBOR_PAGE + 1);
    assert!(matches!(resp_err(&bad), NetError::FrameTooLarge { .. }));
    // Declared id count disagreeing with the payload length.
    let bad = with_u32_at(&frame, RESPONSE_HEADER_BYTES + 4, 3);
    assert!(matches!(resp_err(&bad), NetError::BadParams { .. }));
}

// ---------------------------------------------------------------------------
// Framing discipline.
// ---------------------------------------------------------------------------

#[test]
fn trailing_bytes_belong_to_the_next_frame() {
    let request = sample_requests()[2];
    let mut stream_bytes = request.encode();
    let consumed = stream_bytes.len();
    stream_bytes.extend_from_slice(&[0xAA; 37]);
    let (decoded, used) = Request::decode(&stream_bytes).unwrap();
    assert_eq!((decoded, used), (request, consumed));

    let response = sample_responses()[2].clone();
    let mut stream_bytes = response.encode();
    let consumed = stream_bytes.len();
    stream_bytes.extend_from_slice(&[0x55; 11]);
    let (decoded, used) = Response::decode(&stream_bytes).unwrap();
    assert_eq!((decoded, used), (response, consumed));
}

#[test]
fn back_to_back_frames_read_cleanly_from_one_stream() {
    let requests = sample_requests();
    let mut bytes = Vec::new();
    for request in &requests {
        bytes.extend_from_slice(&request.encode());
    }
    let mut cursor = Cursor::new(bytes);
    for request in &requests {
        assert_eq!(Request::read_from(&mut cursor).unwrap(), Some(*request));
    }
    assert_eq!(Request::read_from(&mut cursor).unwrap(), None);
}
