//! Vendored minimal `rand` stand-in.
//!
//! `san-stats` implements its own xoshiro256++ generator and only needs the
//! `rand` *trait* surface so it can interoperate generically: [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`/`gen_range`.
//! This crate provides exactly that surface with compatible semantics and
//! no dependencies.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible byte filling (infallible in this workspace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core RNG interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Deterministic construction from a fixed-size seed (mirrors
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by splat-filling the seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (i, byte) in seed.as_mut().iter_mut().enumerate() {
            *byte = state.to_le_bytes()[i % 8];
        }
        Self::from_seed(seed)
    }
}

/// A type samplable uniformly over its full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased draw in `[0, n)`.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "gen_range over an empty range");
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut low = m as u64;
    if low < n {
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over an empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`] (mirrors
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample over a type's full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Lcg(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = Lcg(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
