//! Vendored minimal benchmark harness.
//!
//! API-compatible with the slice of `criterion` the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! `sample_size`). Statistics are deliberately simple: per benchmark it
//! warms up briefly, runs `sample_size` timed samples with an auto-scaled
//! iteration count, and prints min/mean/max per-iteration times.
//!
//! Honors `CRITERION_QUICK=1` to cut sample counts for CI smoke runs.
//!
//! Beyond the criterion surface, the harness keeps an in-process results
//! registry: every benchmark's median per-iteration time (ns) is recorded
//! under `suite → metric`, arbitrary measurements can be added with
//! [`record_value`] (byte sizes, throughputs), and [`write_json`] dumps
//! the whole registry as a stable, sorted JSON document — the `BENCH_*.json`
//! files at the repo root are produced this way.

use std::collections::BTreeMap;
use std::fmt;
use std::hint;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The process-wide results registry: suite → metric → value.
fn registry() -> &'static Mutex<BTreeMap<String, BTreeMap<String, f64>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, BTreeMap<String, f64>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Records a measurement into the results registry under
/// `suite → metric`. Benchmark medians are recorded automatically (in
/// nanoseconds); call this directly for non-timing measurements such as
/// byte sizes or throughputs. Non-finite values are ignored (they have no
/// JSON representation); re-recording a metric overwrites it.
pub fn record_value(suite: &str, metric: &str, value: f64) {
    if !value.is_finite() {
        return;
    }
    registry()
        .lock()
        .expect("results registry poisoned")
        .entry(suite.to_string())
        .or_default()
        .insert(metric.to_string(), value);
}

/// Minimal JSON string escaping (the registry keys are benchmark labels —
/// plain ASCII in practice, but quotes and backslashes must not break the
/// document).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes every recorded measurement as a pretty-printed, key-sorted JSON
/// document `{ "suite": { "metric": value } }` — deterministic output, so
/// committed `BENCH_*.json` files diff cleanly between recordings.
pub fn write_json(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let reg = registry().lock().expect("results registry poisoned");
    let mut out = String::from("{\n");
    let mut first_suite = true;
    for (suite, metrics) in reg.iter() {
        if !first_suite {
            out.push_str(",\n");
        }
        first_suite = false;
        out.push_str(&format!("  \"{}\": {{\n", escape_json(suite)));
        let mut first_metric = true;
        for (metric, value) in metrics {
            if !first_metric {
                out.push_str(",\n");
            }
            first_metric = false;
            // Round to one decimal: sub-0.1ns / sub-0.1-byte precision is
            // noise, and the fixed format keeps diffs readable.
            out.push_str(&format!("    \"{}\": {:.1}", escape_json(metric), value));
        }
        out.push_str("\n  }");
    }
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times the closure. The iteration count per sample is auto-scaled so
    /// one sample takes ≳2 ms, amortising timer overhead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up + calibration.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(body());
            }
            self.results.push(start.elapsed());
        }
    }

    /// Median per-iteration time in nanoseconds (`None` before any
    /// samples) — what the results registry records per benchmark.
    fn median_nanos(&self) -> Option<f64> {
        if self.results.is_empty() {
            return None;
        }
        let mut times: Vec<f64> = self
            .results
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        Some(times[times.len() / 2] * 1e9)
    }

    fn report(&self, label: &str) {
        if self.results.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let mut times: Vec<f64> = self.results.iter().map(per_iter).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{label:<48} [{} {} {}]  ({} samples × {} iters)",
            format_time(times[0]),
            format_time(mean),
            format_time(*times.last().expect("nonempty")),
            times.len(),
            self.iters_per_sample,
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn effective_samples(configured: usize) -> usize {
    if std::env::var_os("CRITERION_QUICK").is_some_and(|v| v == "1") {
        2
    } else {
        configured
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: effective_samples(self.samples),
            results: Vec::new(),
            iters_per_sample: 1,
        };
        body(&mut bencher);
        self.finish_one(&id.to_string(), &bencher);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: effective_samples(self.samples),
            results: Vec::new(),
            iters_per_sample: 1,
        };
        body(&mut bencher, input);
        self.finish_one(&id.to_string(), &bencher);
        self
    }

    /// Prints the report line and records the median into the results
    /// registry (suite = group name, metric = benchmark id, unit = ns).
    fn finish_one(&self, id: &str, bencher: &Bencher) {
        bencher.report(&format!("{}/{id}", self.name));
        if let Some(ns) = bencher.median_nanos() {
            let metric = if id.is_empty() { "time" } else { id };
            record_value(&self.name, metric, ns);
        }
    }

    /// Ends the group (cosmetic separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness entry object.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default sample count per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", body);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim/self-test");
        group.sample_size(3);
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 500u64), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn registry_records_and_writes_sorted_json() {
        record_value("suite/b", "metric", 12.34);
        record_value("suite/a", "z_last", 2.0);
        record_value("suite/a", "a_first", 1.0);
        record_value("suite/a", "a_first", 1.5); // overwrite wins
        record_value("suite/a", "dropped", f64::NAN); // ignored
        record_value("suite/\"q\"", "esc", 3.0);
        let path = std::env::temp_dir().join(format!(
            "criterion-shim-registry-{}.json",
            std::process::id()
        ));
        write_json(&path).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(json.contains("\"suite/b\""));
        assert!(json.contains("\"metric\": 12.3"));
        assert!(json.contains("\"a_first\": 1.5"));
        assert!(!json.contains("dropped"));
        assert!(json.contains("\\\"q\\\""));
        // Suites and metrics appear in sorted order.
        let a = json.find("suite/a").unwrap();
        let b = json.find("suite/b").unwrap();
        assert!(a < b);
        assert!(json.find("a_first").unwrap() < json.find("z_last").unwrap());
        // Structurally balanced (the crate is dependency-free, so no JSON
        // parser here; the san-bench suite parses these files for real).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn bench_medians_land_in_registry() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim/registry-test");
        group.bench_function("spin", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.finish();
        let reg = registry().lock().unwrap();
        let ns = reg["shim/registry-test"]["spin"];
        assert!(ns > 0.0, "median {ns} must be positive");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.002), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 µs");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}
