//! Vendored minimal `serde` stand-in.
//!
//! The build environment has no registry access, so the workspace carries
//! this tiny replacement for the parts of serde it actually uses: derived
//! `Serialize`/`Deserialize` (see the sibling `serde_derive` shim) routed
//! through an owned [`Value`] tree, consumed by the sibling `serde_json`
//! shim for JSON persistence. The trait signatures are deliberately simpler
//! than real serde's — the workspace only ever drives them through
//! `serde_json::{to_string, from_str}`, so visitor machinery would be dead
//! weight.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A self-describing data tree, the interchange format between `Serialize`
/// and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (order preserved for determinism).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, when this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The entries, when this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The items, when this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, when this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as `i64`, when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Int(i) => Some(i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

/// Error raised by deserialisation (and propagated by the `serde_json`
/// shim's parser).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn msg(message: impl Into<String>) -> Error {
        Error(message.into())
    }

    /// An "expected X" error.
    pub fn expected(what: &str) -> Error {
        Error(format!("expected {what}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks a key up in a [`Value::Map`] body (helper for derived code).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field '{key}'")))
}

/// Indexes into a [`Value::Seq`] body (helper for derived code).
pub fn seq_get(items: &[Value], index: usize) -> Result<&Value, Error> {
    items
        .get(index)
        .ok_or_else(|| Error(format!("missing sequence element {index}")))
}

/// Serialisation into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Deserialisation from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the interchange tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| Error::expected("unsigned integer"))?;
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| Error::expected("integer"))?;
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|_| Error::msg("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| Error::expected("tuple sequence"))?;
                Ok(($($name::from_value(seq_get(items, $idx)?)?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("map entries"))?;
        let mut out = HashMap::with_capacity_and_hasher(items.len(), S::default());
        for entry in items {
            let pair = entry
                .as_seq()
                .ok_or_else(|| Error::expected("map entry pair"))?;
            out.insert(
                K::from_value(seq_get(pair, 0)?)?,
                V::from_value(seq_get(pair, 1)?)?,
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let xs = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_value(&xs.to_value()).unwrap(), xs);
        let arr = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        let mut m = HashMap::new();
        m.insert((1usize, 2usize), 0.5f64);
        let back: HashMap<(usize, usize), f64> = HashMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_reported() {
        let v = Value::Map(vec![]);
        let err = map_get(v.as_map().unwrap(), "day").unwrap_err();
        assert!(err.to_string().contains("day"));
    }
}
