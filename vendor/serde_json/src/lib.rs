//! Vendored minimal `serde_json` stand-in: JSON text ↔ the serde shim's
//! [`Value`] tree.
//!
//! Supports exactly what the workspace uses — `to_string` and `from_str` —
//! over the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Floats are written with Rust's shortest
//! round-trip formatting, so `f64` values survive a serialise/parse cycle
//! bit-for-bit.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialises any [`Serialize`] value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Shortest round-trip representation; force a fractional
                // marker so the value re-parses as a float when integral.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal (expected '{lit}')")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character '{}'",
                other as char
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(Error::msg("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar starting here.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("nonempty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = vec![(1u32, 2u32), (30, 40)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[30,40]]");
        let back: Vec<(u32, u32)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_floats_exact() {
        for &f in &[0.1f64, 1.0, -2.5e-11, 1.0 / 3.0, f64::MAX] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "json={json}");
        }
    }

    #[test]
    fn roundtrip_strings_with_escapes() {
        let s = "he said \"hi\"\n\ttab \\ slash é漢".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_whitespace_and_nested() {
        let json = " { \"a\" : [ 1 , 2.5 , null , true ] } ";
        let v = parse_value(json).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(m[0].0, "a");
        assert_eq!(m[0].1.as_seq().unwrap().len(), 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("[").is_err());
        assert!(from_str::<u32>("{\"a\"}").is_err());
        assert!(from_str::<u32>("tru").is_err());
    }

    #[test]
    fn negative_numbers() {
        let json = to_string(&-7i64).unwrap();
        assert_eq!(json, "-7");
        let back: i64 = from_str(&json).unwrap();
        assert_eq!(back, -7);
    }
}
