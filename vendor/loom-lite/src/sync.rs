//! Dual-mode sync primitives: `std::sync` semantics outside a model run,
//! scheduler-visible operations inside one.

use crate::sched;
use std::sync::{LockResult, PoisonError};

/// A mutex that is exactly [`std::sync::Mutex`] in production and a
/// model-checked lock under [`crate::model`].
///
/// The data always lives in the inner std mutex (so `&mut` access is
/// safe in both modes); under a model, acquisition additionally routes
/// through the scheduler: a schedule point before the acquire attempt,
/// blocking bookkeeping while the model lock is held elsewhere. The
/// inner std lock is uncontended under a model (the scheduler serialises
/// all model threads), so it only ever provides storage and poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the model lock (if any) before the
/// underlying std guard unlocks.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `(scheduler, thread id, lock address)` when held under a model.
    model: Option<(std::sync::Arc<crate::sched::Scheduler>, usize, usize)>,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex (const, like `std`).
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking (or, under a model, parking at a
    /// schedule point) until it is available. Poisoning passes through
    /// from the underlying std mutex.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match sched::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    model: None,
                    inner: g,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    model: None,
                    inner: p.into_inner(),
                })),
            },
            Some((sched, me)) => {
                let addr = self as *const Mutex<T> as *const u8 as usize;
                sched.lock_acquire(me, addr);
                // Uncontended: the model serialises threads, and the
                // model lock at `addr` is ours.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    model: Some((sched, me, addr)),
                    inner,
                })
            }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Model release first, std unlock second (when `inner` drops):
        // no schedule point separates them, so no model thread can
        // observe the window where the model lock is free but the std
        // lock still held.
        if let Some((sched, me, addr)) = self.model.take() {
            sched.lock_release(me, addr);
        }
    }
}

pub mod atomic {
    //! Dual-mode atomics. Under a model every operation is a schedule
    //! point explored under sequential consistency — the `Ordering`
    //! argument is accepted for source compatibility but does not weaken
    //! the exploration (loom-lite does not model weak memory).

    use crate::sched;
    pub use std::sync::atomic::Ordering;

    macro_rules! dual_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Dual-mode atomic integer (see module docs).
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic (const, like `std`).
                pub const fn new(v: $int) -> $name {
                    $name {
                        inner: <$std>::new(v),
                    }
                }

                fn schedule_point(&self) {
                    if let Some((sched, me)) = sched::current() {
                        sched.yield_point(me);
                    }
                }

                /// Loads the value (schedule point under a model).
                pub fn load(&self, order: Ordering) -> $int {
                    self.schedule_point();
                    self.inner.load(order)
                }

                /// Stores a value (schedule point under a model).
                pub fn store(&self, v: $int, order: Ordering) {
                    self.schedule_point();
                    self.inner.store(v, order)
                }

                /// Atomic add, returning the previous value (schedule
                /// point under a model; the RMW itself is indivisible).
                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    self.schedule_point();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic `fetch_update` (schedule point under a model;
                /// the RMW itself is indivisible).
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$int, $int>
                where
                    F: FnMut($int) -> Option<$int>,
                {
                    self.schedule_point();
                    self.inner.fetch_update(set_order, fetch_order, f)
                }
            }
        };
    }

    dual_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    dual_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
}
