//! Dual-mode sync primitives: `std::sync` semantics outside a model run,
//! scheduler-visible operations inside one.

use crate::sched;
use std::sync::{LockResult, PoisonError};

/// A mutex that is exactly [`std::sync::Mutex`] in production and a
/// model-checked lock under [`crate::model`].
///
/// The data always lives in the inner std mutex (so `&mut` access is
/// safe in both modes); under a model, acquisition additionally routes
/// through the scheduler: a schedule point before the acquire attempt,
/// blocking bookkeeping while the model lock is held elsewhere. The
/// inner std lock is uncontended under a model (the scheduler serialises
/// all model threads), so it only ever provides storage and poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the model lock (if any) before the
/// underlying std guard unlocks.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `(scheduler, thread id, lock address)` when held under a model.
    model: Option<(std::sync::Arc<crate::sched::Scheduler>, usize, usize)>,
    /// Backref to the mutex, so [`Condvar::wait`] can re-lock it after
    /// waking without a separate parameter.
    mutex: &'a Mutex<T>,
    /// Always `Some` from construction to drop; an `Option` only so
    /// [`Condvar::wait`] (which consumes the guard) can release the std
    /// lock without running `Drop`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex (const, like `std`).
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking (or, under a model, parking at a
    /// schedule point) until it is available. Poisoning passes through
    /// from the underlying std mutex.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match sched::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    model: None,
                    mutex: self,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    model: None,
                    mutex: self,
                    inner: Some(p.into_inner()),
                })),
            },
            Some((sched, me)) => {
                let addr = self as *const Mutex<T> as *const u8 as usize;
                sched.lock_acquire(me, addr);
                // Uncontended: the model serialises threads, and the
                // model lock at `addr` is ours.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    model: Some((sched, me, addr)),
                    mutex: self,
                    inner: Some(inner),
                })
            }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // `inner` is Some from construction to drop; only the consuming
        // Condvar::wait takes it, and that never returns this guard.
        self.inner.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Model release first, std unlock second (when `inner` drops):
        // no schedule point separates them, so no model thread can
        // observe the window where the model lock is free but the std
        // lock still held.
        if let Some((sched, me, addr)) = self.model.take() {
            sched.lock_release(me, addr);
        }
    }
}

/// A condition variable that is exactly [`std::sync::Condvar`] in
/// production and a model-checked wait/notify point under
/// [`crate::model`].
///
/// Under a model, [`wait`](Condvar::wait) atomically (with respect to
/// every other model thread) releases the guard's model lock and parks
/// the thread on this condvar's address; `notify_all` readies all such
/// waiters, who then re-contend for the mutex when scheduled. The
/// atomicity of release-and-park is provided by the scheduler's own
/// lock, so the classic lost-wakeup window (predicate check → unlock →
/// notify slips in → park forever) cannot occur — exactly the guarantee
/// real condvars give. Waiters must still re-check their predicate in a
/// loop: the model explores wakeups where the predicate was re-falsified
/// by another thread, and `notify_one` is modelled as `notify_all`
/// (legal, since condvars permit spurious wakeups).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable (const, like `std`).
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Releases `guard`'s mutex and blocks until notified (or, under a
    /// model, until the scheduler explores a wakeup), then re-locks the
    /// mutex and returns a fresh guard. Like `std`, wakeups may be
    /// spurious — always wait in a predicate loop. Poisoning passes
    /// through from the underlying std mutex.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        match guard.model.take() {
            None => {
                let std_guard = guard.inner.take().expect("guard accessed after release");
                drop(guard); // inert: both fields already taken
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        model: None,
                        mutex,
                        inner: Some(g),
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        model: None,
                        mutex,
                        inner: Some(p.into_inner()),
                    })),
                }
            }
            Some((sched, me, lock_addr)) => {
                let cv_addr = self as *const Condvar as usize;
                // Release the std lock first: it is uncontended under a
                // model (threads are serialised), and no model thread can
                // run between here and the scheduler op below, so the
                // "model lock held, std lock free" window is unobservable.
                drop(guard.inner.take());
                drop(guard);
                sched.condvar_wait(me, cv_addr, lock_addr);
                // Model lock re-held; re-take the (uncontended) std lock.
                let inner = mutex.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    model: Some((sched, me, lock_addr)),
                    mutex,
                    inner: Some(inner),
                })
            }
        }
    }

    /// Wakes all threads blocked in [`wait`](Condvar::wait) on this
    /// condvar.
    pub fn notify_all(&self) {
        match sched::current() {
            None => self.inner.notify_all(),
            Some((sched, _)) => sched.condvar_notify_all(self as *const Condvar as usize),
        }
    }

    /// Wakes at least one blocked thread. Under a model this readies
    /// *every* waiter — a sound over-approximation (condvars permit
    /// spurious wakeups, so any subset of waiters running is a legal
    /// real-world behaviour), which keeps the scheduler free to explore
    /// each waiter running first.
    pub fn notify_one(&self) {
        match sched::current() {
            None => self.inner.notify_one(),
            Some((sched, _)) => sched.condvar_notify_all(self as *const Condvar as usize),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

pub mod atomic {
    //! Dual-mode atomics. Under a model every operation is a schedule
    //! point explored under sequential consistency — the `Ordering`
    //! argument is accepted for source compatibility but does not weaken
    //! the exploration (loom-lite does not model weak memory).

    use crate::sched;
    pub use std::sync::atomic::Ordering;

    macro_rules! dual_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Dual-mode atomic integer (see module docs).
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic (const, like `std`).
                pub const fn new(v: $int) -> $name {
                    $name {
                        inner: <$std>::new(v),
                    }
                }

                fn schedule_point(&self) {
                    if let Some((sched, me)) = sched::current() {
                        sched.yield_point(me);
                    }
                }

                /// Loads the value (schedule point under a model).
                pub fn load(&self, order: Ordering) -> $int {
                    self.schedule_point();
                    self.inner.load(order)
                }

                /// Stores a value (schedule point under a model).
                pub fn store(&self, v: $int, order: Ordering) {
                    self.schedule_point();
                    self.inner.store(v, order)
                }

                /// Atomic add, returning the previous value (schedule
                /// point under a model; the RMW itself is indivisible).
                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    self.schedule_point();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic `fetch_update` (schedule point under a model;
                /// the RMW itself is indivisible).
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$int, $int>
                where
                    F: FnMut($int) -> Option<$int>,
                {
                    self.schedule_point();
                    self.inner.fetch_update(set_order, fetch_order, f)
                }
            }
        };
    }

    dual_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    dual_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
}
