//! Dual-mode threads: plain `std::thread` outside a model, registered
//! scheduler participants inside one.

use crate::sched;
use std::sync::Arc;

/// Handle to a spawned (possibly model-scheduled) thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    /// `(scheduler, target thread id)` when spawned under a model.
    model: Option<(Arc<sched::Scheduler>, sched::ThreadId)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (`Err` with
    /// the panic payload if it panicked, exactly like `std`). Under a
    /// model the wait is a scheduler blocking point, so every ordering
    /// of "joiner parks" versus "target finishes" is explored.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, target)) = &self.model {
            let (_, me) =
                sched::current().expect("model JoinHandle joined from a non-model thread");
            sched.join_wait(me, *target);
        }
        self.inner.join()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("model", &self.model.as_ref().map(|(_, id)| *id))
            .finish()
    }
}

/// Spawns a thread. Inside a model run the new thread is registered with
/// the scheduler and becomes schedulable immediately (its first slice of
/// user code runs when the scheduler first picks it); outside one this
/// is exactly `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        None => JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        },
        Some((sched, _me)) => {
            let id = sched.register_thread();
            let sched2 = Arc::clone(&sched);
            let inner = std::thread::spawn(move || sched2.thread_main(id, f));
            JoinHandle {
                inner,
                model: Some((sched, id)),
            }
        }
    }
}
