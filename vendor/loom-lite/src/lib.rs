//! `loom-lite`: a vendored, dependency-free, loom-style deterministic
//! model checker for concurrent code.
//!
//! The workspace has no registry access, so this crate carries the
//! smallest scheduler that still gives the serving layer real
//! model-checking teeth: [`model`] runs a closure over **every**
//! interleaving of the threads it spawns (depth-first enumeration of
//! scheduler choices, replayed deterministically), with schedule points
//! at every [`sync::Mutex`] acquisition, every [`sync::Condvar`] wait,
//! and every [`sync::atomic`] operation.
//!
//! # Dual-mode primitives
//!
//! Unlike real loom, the primitives here are **runtime-switched**, not
//! compile-time-switched: outside a model run, [`sync::Mutex`] and the
//! atomics delegate straight to their `std::sync` counterparts (the only
//! overhead is one thread-local flag check per operation), so production
//! code can use them unconditionally and the *same compiled code* is what
//! the model checker explores — no `--cfg loom` build split, no risk of
//! checking a shadow copy that drifts from the shipped one.
//!
//! # What the model covers (and what it does not)
//!
//! * Explores every ordering of schedule points under **sequential
//!   consistency**. Lost-update races, check-then-act races across
//!   critical sections, deadlocks (reported with the failing schedule)
//!   and invariant violations in any interleaving are all found
//!   exhaustively.
//! * Does **not** model weak memory: `Ordering::Relaxed` is explored as
//!   if it were `SeqCst`. Reordering-sensitive claims must be argued in
//!   `// ORDERING:` comments (enforced by `san-audit`), not proven here.
//! * No partial-order reduction: state spaces must be kept small (2–3
//!   threads, a handful of schedule points each). The iteration cap in
//!   [`Builder::max_iterations`] turns accidental explosion into a loud
//!   failure instead of a hung test.
//!
//! # Example
//!
//! ```
//! use loom_lite::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // Racy read-modify-write: the model finds the lost update.
//! let lost = Arc::new(std::sync::atomic::AtomicU64::new(0)); // plain std: cross-iteration stats
//! let lost2 = Arc::clone(&lost);
//! loom_lite::model(move || {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let threads: Vec<_> = (0..2)
//!         .map(|_| {
//!             let c = Arc::clone(&c);
//!             loom_lite::thread::spawn(move || {
//!                 let v = c.load(Ordering::SeqCst);
//!                 c.store(v + 1, Ordering::SeqCst);
//!             })
//!         })
//!         .collect();
//!     for t in threads {
//!         t.join().unwrap();
//!     }
//!     if c.load(Ordering::SeqCst) == 1 {
//!         lost2.store(1, std::sync::atomic::Ordering::Relaxed);
//!     }
//! });
//! assert_eq!(lost.load(std::sync::atomic::Ordering::Relaxed), 1);
//! ```

pub(crate) mod sched;

pub mod model;
pub mod sync;
pub mod thread;

pub use model::{model, Builder, Report};

/// True while the calling thread is running under a [`model`] scheduler.
///
/// Production code should never need this; it exists so tests can assert
/// which mode they exercised.
pub fn is_model_thread() -> bool {
    sched::current().is_some()
}
