//! Exhaustive interleaving exploration: depth-first enumeration over the
//! scheduler's choice tree.

use crate::sched::{Choice, Scheduler};
use std::sync::Arc;

/// Exploration statistics handed back by a completed model check.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct complete interleavings executed.
    pub iterations: usize,
    /// Length of the longest schedule explored (total schedule points).
    pub max_depth: usize,
}

/// Exploration configuration. The defaults suit "2–3 threads, a handful
/// of schedule points each" models; anything bigger should be rethought,
/// not given a bigger budget.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Hard cap on explored interleavings — exceeding it panics, turning
    /// accidental state-space explosion into a loud failure instead of a
    /// multi-minute test.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            max_iterations: 200_000,
        }
    }
}

impl Builder {
    /// A builder with the default iteration cap.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Runs `f` under every interleaving of its model threads.
    ///
    /// `f` is re-executed once per interleaving and must be deterministic
    /// apart from scheduling: same spawns, same lock/atomic ops, given
    /// the same schedule. Shared `std` atomics captured by the closure
    /// are invisible to the scheduler and can accumulate observations
    /// *across* interleavings (e.g. "did any schedule lose an update?").
    ///
    /// # Panics
    /// Propagates the first assertion failure (or deadlock) found, with
    /// the offending schedule, and panics if `max_iterations` is hit.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let sched = Arc::new(Scheduler::new());
        let mut prefix: Vec<Choice> = Vec::new();
        let mut iterations = 0usize;
        let mut max_depth = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom-lite: exceeded {} iterations — shrink the model \
                 (fewer threads / fewer schedule points), do not raise the cap",
                self.max_iterations
            );
            let (choices, panic) = sched.run_iteration(&f, &prefix);
            if let Some(msg) = panic {
                let schedule: Vec<usize> = choices.iter().map(|c| c.enabled[c.chosen]).collect();
                panic!(
                    "loom-lite: failing interleaving found on iteration {iterations}\n\
                     schedule (thread ids in run order): {schedule:?}\n{msg}"
                );
            }
            max_depth = max_depth.max(choices.len());
            // Backtrack: rewind to the deepest choice with an untried
            // alternative and advance it; exploration is complete when
            // none remains.
            prefix = choices;
            loop {
                match prefix.pop() {
                    None => {
                        return Report {
                            iterations,
                            max_depth,
                        }
                    }
                    Some(c) if c.chosen + 1 < c.enabled.len() => {
                        prefix.push(Choice {
                            chosen: c.chosen + 1,
                            enabled: c.enabled,
                        });
                        break;
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

/// [`Builder::check`] with default settings. The usual entry point:
///
/// ```ignore
/// loom_lite::model(|| {
///     // spawn loom_lite threads, assert invariants
/// });
/// ```
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
