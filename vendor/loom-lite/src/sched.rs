//! The cooperative scheduler underneath [`crate::model`].
//!
//! One *token* circulates: exactly one model thread runs at a time, and
//! it runs uninterrupted until its next schedule point (mutex acquire,
//! atomic op, join, or finish). At a schedule point the thread parks and
//! the controller picks the next runnable thread — by replaying a
//! recorded choice prefix, then first-choice beyond it — so a run is a
//! pure function of its choice sequence and the exploration in
//! `model.rs` can enumerate the whole tree.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

pub(crate) type ThreadId = usize;

/// Where a model thread currently stands, as the controller sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum RunState {
    /// Parked at a schedule point, eligible to be scheduled.
    Ready,
    /// Holds the token and is executing user code.
    Running,
    /// Parked until the lock keyed by this address is released.
    BlockedLock(usize),
    /// Parked on the condition variable keyed by this address until a
    /// notify readies it (it then re-contends for its mutex).
    BlockedCondvar(usize),
    /// Parked until the target thread finishes.
    BlockedJoin(ThreadId),
    /// Returned (or unwound) out of its closure.
    Finished,
}

/// One scheduler decision: which of the then-enabled threads ran.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Choice {
    /// Thread ids that were schedulable at this point, ascending.
    pub enabled: Vec<ThreadId>,
    /// Index into `enabled` of the thread that was scheduled.
    pub chosen: usize,
}

#[derive(Default)]
pub(crate) struct Shared {
    /// The thread holding the token; `None` while the controller decides.
    active: Option<ThreadId>,
    states: Vec<RunState>,
    /// Model-lock ownership, keyed by the `Mutex`'s address (stable for
    /// its lifetime; the map is reset every iteration so address reuse
    /// across iterations is harmless).
    lock_owners: HashMap<usize, ThreadId>,
    /// First panic captured from a model thread this iteration.
    panic: Option<String>,
    /// Thread ids in scheduling order, for failure reports.
    trace: Vec<ThreadId>,
}

pub(crate) struct Scheduler {
    shared: Mutex<Shared>,
    cv: Condvar,
}

thread_local! {
    /// Fast flag: is this OS thread a registered model thread? Checked
    /// before touching the heavier context below, so the non-model path
    /// through every primitive costs one thread-local read.
    static IS_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static CONTEXT: std::cell::RefCell<Option<(Arc<Scheduler>, ThreadId)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's scheduler context, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Scheduler>, ThreadId)> {
    if !IS_MODEL.with(|f| f.get()) {
        return None;
    }
    CONTEXT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<(Arc<Scheduler>, ThreadId)>) {
    IS_MODEL.with(|f| f.set(ctx.is_some()));
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

impl Scheduler {
    pub(crate) fn new() -> Scheduler {
        Scheduler {
            shared: Mutex::new(Shared::default()),
            cv: Condvar::new(),
        }
    }

    fn lock_shared(&self) -> MutexGuard<'_, Shared> {
        // A model thread can panic while holding this lock only inside
        // scheduler code itself (user panics are caught before reaching
        // it); recover the state rather than cascading poison.
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a new model thread (called with the token held by the
    /// spawning thread, or by the controller for the root).
    pub(crate) fn register_thread(&self) -> ThreadId {
        let mut s = self.lock_shared();
        s.states.push(RunState::Ready);
        s.states.len() - 1
    }

    /// Parks until the controller schedules `me` for the first time.
    fn park_until_scheduled(&self, me: ThreadId) {
        let mut s = self.lock_shared();
        while s.active != Some(me) {
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.states[me] = RunState::Running;
    }

    /// A plain schedule point: hand the token back, park, resume when
    /// rescheduled.
    pub(crate) fn yield_point(&self, me: ThreadId) {
        let mut s = self.lock_shared();
        s.states[me] = RunState::Ready;
        s.active = None;
        self.cv.notify_all();
        while s.active != Some(me) {
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.states[me] = RunState::Running;
    }

    /// Schedule point + model-lock acquisition for the mutex at `addr`.
    /// Returns holding both the token and the model lock.
    pub(crate) fn lock_acquire(&self, me: ThreadId, addr: usize) {
        // Preemption point before the acquire attempt: this is where a
        // rival thread can slip between a caller's check and its act.
        self.yield_point(me);
        self.lock_reacquire(me, addr);
    }

    /// Model-lock acquisition *without* the leading preemption point:
    /// used from [`lock_acquire`] (after its yield) and from a condvar
    /// wakeup, where being rescheduled was itself the preemption choice.
    pub(crate) fn lock_reacquire(&self, me: ThreadId, addr: usize) {
        let mut s = self.lock_shared();
        loop {
            if let std::collections::hash_map::Entry::Vacant(e) = s.lock_owners.entry(addr) {
                e.insert(me);
                return;
            }
            s.states[me] = RunState::BlockedLock(addr);
            s.active = None;
            self.cv.notify_all();
            while s.active != Some(me) {
                s = self
                    .cv
                    .wait(s)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            s.states[me] = RunState::Running;
            // Re-check: another thread scheduled between the release that
            // woke us and now may have re-taken the lock.
        }
    }

    /// Releases the model lock at `addr` and readies its waiters. Not a
    /// schedule point: the holder keeps running until its next visible
    /// op, which is where the preemption choice lives.
    pub(crate) fn lock_release(&self, me: ThreadId, addr: usize) {
        let mut s = self.lock_shared();
        let owner = s.lock_owners.remove(&addr);
        debug_assert_eq!(owner, Some(me), "release by non-owner");
        for st in s.states.iter_mut() {
            if *st == RunState::BlockedLock(addr) {
                *st = RunState::Ready;
            }
        }
    }

    /// Condvar wait: atomically (under the scheduler's own lock, so no
    /// model thread can run in between) releases the model lock at
    /// `lock_addr`, parks `me` on the condvar at `cv_addr`, and — once a
    /// notify readies it and the controller schedules it — re-contends
    /// for the model lock. The atomic release-and-park is what rules out
    /// lost wakeups: a notifier can only run after `me` is already
    /// registered as a condvar waiter.
    pub(crate) fn condvar_wait(&self, me: ThreadId, cv_addr: usize, lock_addr: usize) {
        {
            let mut s = self.lock_shared();
            let owner = s.lock_owners.remove(&lock_addr);
            debug_assert_eq!(owner, Some(me), "condvar wait without holding the mutex");
            for st in s.states.iter_mut() {
                if *st == RunState::BlockedLock(lock_addr) {
                    *st = RunState::Ready;
                }
            }
            s.states[me] = RunState::BlockedCondvar(cv_addr);
            s.active = None;
            self.cv.notify_all();
            while s.active != Some(me) {
                s = self
                    .cv
                    .wait(s)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            s.states[me] = RunState::Running;
        }
        // Woken: re-take the mutex. No leading yield — the controller's
        // decision to schedule us here was the preemption choice.
        self.lock_reacquire(me, lock_addr);
    }

    /// Readies every thread parked on the condvar at `cv_addr`. Like
    /// [`lock_release`], not a schedule point: the notifier keeps running
    /// until its next visible op, and the woken waiters re-contend for
    /// their mutex (and re-check their predicate) when scheduled.
    pub(crate) fn condvar_notify_all(&self, cv_addr: usize) {
        let mut s = self.lock_shared();
        for st in s.states.iter_mut() {
            if *st == RunState::BlockedCondvar(cv_addr) {
                *st = RunState::Ready;
            }
        }
    }

    /// Schedule point + block until `target` finishes.
    pub(crate) fn join_wait(&self, me: ThreadId, target: ThreadId) {
        self.yield_point(me);
        let mut s = self.lock_shared();
        loop {
            if s.states[target] == RunState::Finished {
                return;
            }
            s.states[me] = RunState::BlockedJoin(target);
            s.active = None;
            self.cv.notify_all();
            while s.active != Some(me) {
                s = self
                    .cv
                    .wait(s)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            s.states[me] = RunState::Running;
        }
    }

    /// Marks `me` finished (recording its panic, if any), readies its
    /// joiners and returns the token to the controller.
    fn finish(&self, me: ThreadId, panic: Option<String>) {
        let mut s = self.lock_shared();
        if let Some(msg) = panic {
            s.panic.get_or_insert(msg);
        }
        s.states[me] = RunState::Finished;
        for st in s.states.iter_mut() {
            if *st == RunState::BlockedJoin(me) {
                *st = RunState::Ready;
            }
        }
        s.active = None;
        self.cv.notify_all();
    }

    /// The OS-thread body wrapping every model thread's closure.
    pub(crate) fn thread_main<T>(self: &Arc<Scheduler>, me: ThreadId, f: impl FnOnce() -> T) -> T {
        set_current(Some((Arc::clone(self), me)));
        self.park_until_scheduled(me);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        set_current(None);
        match result {
            Ok(v) => {
                self.finish(me, None);
                v
            }
            Err(e) => {
                self.finish(me, Some(panic_message(e.as_ref())));
                std::panic::resume_unwind(e)
            }
        }
    }

    /// Runs one full iteration of `f` under the choice prefix `replay`,
    /// returning the complete choice sequence taken and any panic.
    ///
    /// On deadlock the iteration is abandoned: the deadlocked OS threads
    /// stay parked until process exit (they hold no OS resources beyond
    /// their stacks) and the deadlock is reported as a model failure.
    pub(crate) fn run_iteration(
        self: &Arc<Scheduler>,
        f: &Arc<dyn Fn() + Send + Sync>,
        replay: &[Choice],
    ) -> (Vec<Choice>, Option<String>) {
        {
            let mut s = self.lock_shared();
            debug_assert!(s.active.is_none(), "iteration started mid-run");
            s.states.clear();
            s.lock_owners.clear();
            s.panic = None;
            s.trace.clear();
        }
        let root = self.register_thread();
        debug_assert_eq!(root, 0, "root thread registers first");
        let sched = Arc::clone(self);
        let body = Arc::clone(f);
        let root_handle = std::thread::spawn(move || sched.thread_main(root, move || body()));

        let mut choices: Vec<Choice> = Vec::new();
        loop {
            let mut s = self.lock_shared();
            while s.active.is_some() {
                s = self
                    .cv
                    .wait(s)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let enabled: Vec<ThreadId> = s
                .states
                .iter()
                .enumerate()
                .filter(|(_, st)| **st == RunState::Ready)
                .map(|(i, _)| i)
                .collect();
            if enabled.is_empty() {
                if s.states.iter().all(|st| *st == RunState::Finished) {
                    break;
                }
                // Blocked threads with no runnable peer: a real deadlock
                // (or the aftermath of a panic that stranded waiters on a
                // lock the unwinder could not release).
                let msg = format!(
                    "deadlock: no runnable thread; states {:?}, schedule so far {:?}",
                    s.states, s.trace
                );
                let panic = Some(s.panic.take().unwrap_or(msg));
                drop(s);
                // Deliberately do not join: the stranded threads never
                // exit. The root handle leaks with them.
                drop(root_handle);
                return (choices, panic);
            }
            let step = choices.len();
            let chosen = if step < replay.len() {
                assert_eq!(
                    replay[step].enabled, enabled,
                    "nondeterministic execution: replay diverged at step {step} \
                     (the modelled closure must be deterministic apart from scheduling)"
                );
                replay[step].chosen
            } else {
                0
            };
            let tid = enabled[chosen];
            choices.push(Choice { enabled, chosen });
            s.trace.push(tid);
            s.active = Some(tid);
            self.cv.notify_all();
        }
        let panic = self.lock_shared().panic.take();
        // All threads finished; reap the root's OS thread. Child OS
        // threads are reaped by the user's `join` calls (or detach
        // harmlessly after finishing).
        let _ = root_handle.join();
        (choices, panic)
    }
}
