//! The dual-mode [`Condvar`](loom_lite::sync::Condvar) checking itself:
//! model-mode handoff exploration (both the waited and the fast path
//! must be reachable), lost-wakeup impossibility (notify-before-wait
//! with a predicate loop never hangs), stranded-waiter deadlock
//! detection, and the std-delegation (non-model) mode.

use loom_lite::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

/// Classic one-shot handoff: a producer sets the flag under the mutex
/// and notifies; a consumer waits in a predicate loop. Every schedule
/// must deliver the value, and the exploration must cover both the
/// consumer-waited and consumer-never-waited paths.
#[test]
fn handoff_is_delivered_in_every_schedule() {
    let waited = Arc::new(StdAtomicU64::new(0));
    let fast = Arc::new(StdAtomicU64::new(0));
    let (waited2, fast2) = (Arc::clone(&waited), Arc::clone(&fast));
    let report = loom_lite::model(move || {
        let cell = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let producer = {
            let cell = Arc::clone(&cell);
            loom_lite::thread::spawn(move || {
                let (lock, cv) = &*cell;
                *lock.lock().expect("producer lock") = Some(42);
                cv.notify_all();
            })
        };
        let consumer = {
            let cell = Arc::clone(&cell);
            let waited = Arc::clone(&waited2);
            let fast = Arc::clone(&fast2);
            loom_lite::thread::spawn(move || {
                let (lock, cv) = &*cell;
                let mut guard = lock.lock().expect("consumer lock");
                let mut ever_waited = false;
                loop {
                    if let Some(v) = *guard {
                        assert_eq!(v, 42, "handoff delivered intact");
                        break;
                    }
                    ever_waited = true;
                    guard = cv.wait(guard).expect("wait");
                }
                if ever_waited {
                    waited.fetch_add(1, StdOrdering::Relaxed);
                } else {
                    fast.fetch_add(1, StdOrdering::Relaxed);
                }
            })
        };
        producer.join().expect("producer");
        consumer.join().expect("consumer");
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
    assert!(
        waited.load(StdOrdering::Relaxed) > 0,
        "some schedule must park the consumer on the condvar"
    );
    assert!(
        fast.load(StdOrdering::Relaxed) > 0,
        "some schedule must let the consumer see the value without waiting"
    );
}

/// The lost-wakeup shape: the notify can land entirely before the
/// waiter even locks the mutex. Because the waiter re-checks its
/// predicate under the lock before parking, no schedule may hang — the
/// model completing (instead of reporting a deadlock) is the assertion.
#[test]
fn notify_before_wait_is_not_lost_with_predicate_loop() {
    let report = loom_lite::model(|| {
        let cell = Arc::new((Mutex::new(false), Condvar::new()));
        let setter = {
            let cell = Arc::clone(&cell);
            loom_lite::thread::spawn(move || {
                let (lock, cv) = &*cell;
                *lock.lock().expect("setter lock") = true;
                cv.notify_all();
            })
        };
        let (lock, cv) = &*cell;
        let mut guard = lock.lock().expect("waiter lock");
        while !*guard {
            guard = cv.wait(guard).expect("wait");
        }
        drop(guard);
        setter.join().expect("setter");
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
}

/// `notify_one` under a model readies every waiter (a legal spurious-
/// wakeup over-approximation): with two waiters and one notify, both
/// must terminate in every schedule.
#[test]
fn notify_one_unblocks_all_model_waiters() {
    let report = loom_lite::model(|| {
        let cell = Arc::new((Mutex::new(false), Condvar::new()));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                loom_lite::thread::spawn(move || {
                    let (lock, cv) = &*cell;
                    let mut guard = lock.lock().expect("waiter lock");
                    while !*guard {
                        guard = cv.wait(guard).expect("wait");
                    }
                })
            })
            .collect();
        let (lock, cv) = &*cell;
        *lock.lock().expect("setter lock") = true;
        cv.notify_one();
        for w in waiters {
            w.join().expect("waiter");
        }
    });
    assert!(report.iterations > 1, "explored {}", report.iterations);
}

/// A waiter nobody ever notifies is a deadlock, and the model must say
/// so rather than hang.
#[test]
#[should_panic(expected = "deadlock")]
fn stranded_waiter_is_reported_as_deadlock() {
    loom_lite::model(|| {
        let cell = (Mutex::new(false), Condvar::new());
        let (lock, cv) = &cell;
        let mut guard = lock.lock().expect("lock");
        while !*guard {
            guard = cv.wait(guard).expect("wait");
        }
    });
}

/// Outside a model the primitives delegate to `std`: a real blocking
/// handoff between OS threads works, and no model scheduler is involved.
#[test]
fn production_mode_delegates_to_std() {
    assert!(!loom_lite::is_model_thread());
    let cell = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
    let consumer = {
        let cell = Arc::clone(&cell);
        std::thread::spawn(move || {
            let (lock, cv) = &*cell;
            let mut guard = lock.lock().expect("consumer lock");
            loop {
                if let Some(v) = *guard {
                    return v;
                }
                guard = cv.wait(guard).expect("wait");
            }
        })
    };
    // Give the consumer a chance to actually park (not required for
    // correctness — notify_all after setting the flag is race-free).
    std::thread::sleep(std::time::Duration::from_millis(10));
    let (lock, cv) = &*cell;
    *lock.lock().expect("producer lock") = Some(7);
    cv.notify_all();
    assert_eq!(consumer.join().expect("consumer"), 7);
}
