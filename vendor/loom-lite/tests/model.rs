//! The model checker checking itself: known-racy and known-sound
//! programs, exhaustiveness counts, deadlock detection, and the
//! std-delegation (non-model) mode.

use loom_lite::sync::atomic::{AtomicU64, Ordering};
use loom_lite::sync::Mutex;
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::Arc;

/// Two unsynchronised load-then-store increments: the model must find
/// both the lost-update interleaving (final = 1) and the sequential ones
/// (final = 2).
#[test]
fn finds_lost_update() {
    let finals = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
    let finals2 = Arc::clone(&finals);
    let report = loom_lite::model(move || {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom_lite::thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        finals2
            .lock()
            .expect("stats lock")
            .insert(c.load(Ordering::SeqCst));
    });
    assert!(
        report.iterations > 1,
        "explored {} schedules",
        report.iterations
    );
    let finals = finals.lock().expect("stats lock");
    assert!(finals.contains(&1), "lost update found: {finals:?}");
    assert!(finals.contains(&2), "sequential order found: {finals:?}");
}

/// The same increment under a mutex: every interleaving must end at 2.
#[test]
fn mutex_prevents_lost_update() {
    let report = loom_lite::model(|| {
        let c = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom_lite::thread::spawn(move || {
                    *c.lock().expect("model mutex") += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(*c.lock().expect("model mutex"), 2);
    });
    assert!(report.iterations > 1);
}

/// Mutual exclusion is actually enforced: a critical-section overlap
/// detector must never fire.
#[test]
fn mutex_is_mutually_exclusive() {
    loom_lite::model(|| {
        let lock = Arc::new(Mutex::new(()));
        let inside = Arc::new(StdAtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let inside = Arc::clone(&inside);
                loom_lite::thread::spawn(move || {
                    let _g = lock.lock().expect("model mutex");
                    let seen = inside.fetch_add(1, StdOrdering::SeqCst);
                    assert_eq!(seen, 0, "two threads inside the critical section");
                    inside.fetch_add(u64::MAX, StdOrdering::SeqCst); // -1
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
    });
}

/// Exhaustiveness: two threads with one schedule-visible op each have
/// exactly 2 maximal interleavings *of those ops*; with spawn/join
/// orderings the count is larger, but both op orders must occur.
#[test]
fn explores_both_op_orders() {
    let orders = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
    let orders2 = Arc::clone(&orders);
    loom_lite::model(move || {
        let log = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..2)
            .map(|tag| {
                let log = Arc::clone(&log);
                loom_lite::thread::spawn(move || {
                    log.lock().expect("log").push(tag);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        orders2
            .lock()
            .expect("stats")
            .insert(log.lock().expect("log").clone());
    });
    let orders = orders.lock().expect("stats");
    assert!(
        orders.contains(&vec![0, 1]) && orders.contains(&vec![1, 0]),
        "{orders:?}"
    );
}

/// Lock-ordering inversion: the model must find the deadlock and panic.
#[test]
#[should_panic(expected = "deadlock")]
fn detects_deadlock() {
    loom_lite::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = loom_lite::thread::spawn(move || {
            let _ga = a1.lock().expect("a");
            let _gb = b1.lock().expect("b");
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = loom_lite::thread::spawn(move || {
            let _gb = b2.lock().expect("b");
            let _ga = a2.lock().expect("a");
        });
        let _ = t1.join();
        let _ = t2.join();
    });
}

/// A failing assertion in a rare interleaving is found and reported with
/// its schedule.
#[test]
#[should_panic(expected = "failing interleaving")]
fn reports_failing_interleaving() {
    loom_lite::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = loom_lite::thread::spawn(move || {
            c2.store(1, Ordering::SeqCst);
        });
        // Racy read: in some interleavings we observe the store before
        // the join — that observation is the planted "bug".
        let seen = c.load(Ordering::SeqCst);
        t.join().expect("model thread");
        assert_eq!(seen, 0, "planted: reader observed the writer");
    });
}

/// Outside a model run the primitives are plain std: no scheduler, no
/// panic, normal concurrency.
#[test]
fn std_mode_delegation() {
    assert!(!loom_lite::is_model_thread());
    let m = Arc::new(Mutex::new(0u64));
    let a = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let m = Arc::clone(&m);
            let a = Arc::clone(&a);
            loom_lite::thread::spawn(move || {
                assert!(!loom_lite::is_model_thread());
                for _ in 0..100 {
                    *m.lock().expect("std-mode mutex") += 1;
                    a.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread");
    }
    assert_eq!(*m.lock().expect("std-mode mutex"), 400);
    assert_eq!(a.load(Ordering::Relaxed), 400);
}

/// Model threads see themselves flagged; the flag clears afterwards.
#[test]
fn model_flag_scoping() {
    let saw = Arc::new(StdAtomicU64::new(0));
    let saw2 = Arc::clone(&saw);
    loom_lite::model(move || {
        if loom_lite::is_model_thread() {
            saw2.store(1, StdOrdering::Relaxed);
        }
    });
    assert_eq!(saw.load(StdOrdering::Relaxed), 1);
    assert!(!loom_lite::is_model_thread());
}

/// fetch_update is explored as an indivisible RMW: concurrent saturating
/// increments never lose updates.
#[test]
fn fetch_update_is_atomic() {
    loom_lite::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom_lite::thread::spawn(move || {
                    c.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                        Some(v.saturating_add(1))
                    })
                    .expect("fetch_update never fails here");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
}
