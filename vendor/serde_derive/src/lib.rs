//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! workspace-local `serde` stand-in.
//!
//! The registry is unreachable from the build environment, so instead of the
//! real `serde_derive` (which depends on `syn`/`quote`) this crate parses the
//! derive input by hand from the raw token stream. It supports exactly the
//! shapes the workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes and longer),
//! * enums with unit, tuple and struct variants,
//!
//! all without generic parameters. Field/variant attributes (doc comments
//! included) are skipped; `#[serde(...)]` customisation is intentionally not
//! supported — the workspace does not use it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skips any number of leading `#[...]` attributes starting at `i`.
fn skip_attrs(trees: &[TokenTree], mut i: usize) -> usize {
    while i < trees.len() && is_punct(&trees[i], '#') {
        i += 1; // '#'
        if i < trees.len()
            && matches!(&trees[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
        {
            i += 1;
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(trees: &[TokenTree], mut i: usize) -> usize {
    if i < trees.len() {
        if let TokenTree::Ident(id) = &trees[i] {
            if id.to_string() == "pub" {
                i += 1;
                if i < trees.len()
                    && matches!(&trees[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skips a type expression until a top-level comma (or end), starting at `i`.
/// Angle-bracket depth is tracked so `Vec<(u32, u32)>` stays one field.
fn skip_type(trees: &[TokenTree], mut i: usize) -> usize {
    let mut depth: i32 = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses `{ field: Ty, ... }` contents into field names.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let trees: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        i = skip_attrs(&trees, i);
        i = skip_vis(&trees, i);
        if i >= trees.len() {
            break;
        }
        let TokenTree::Ident(name) = &trees[i] else {
            panic!("serde_derive: expected field name, got {:?}", trees[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(
            i < trees.len() && is_punct(&trees[i], ':'),
            "serde_derive: expected ':' after field name"
        );
        i += 1;
        i = skip_type(&trees, i);
        if i < trees.len() && is_punct(&trees[i], ',') {
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant `( Ty, Ty, ... )`.
fn count_tuple_fields(group: TokenStream) -> usize {
    let trees: Vec<TokenTree> = group.into_iter().collect();
    if trees.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < trees.len() {
        i = skip_attrs(&trees, i);
        i = skip_vis(&trees, i);
        if i >= trees.len() {
            break;
        }
        count += 1;
        i = skip_type(&trees, i);
        if i < trees.len() && is_punct(&trees[i], ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let trees: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        i = skip_attrs(&trees, i);
        if i >= trees.len() {
            break;
        }
        let TokenTree::Ident(name) = &trees[i] else {
            panic!("serde_derive: expected variant name, got {:?}", trees[i]);
        };
        let name = name.to_string();
        i += 1;
        let kind = match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if i < trees.len() && is_punct(&trees[i], ',') {
            i += 1;
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&trees, 0);
    i = skip_vis(&trees, i);
    let TokenTree::Ident(kw) = &trees[i] else {
        panic!("serde_derive: expected 'struct' or 'enum'");
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &trees[i] else {
        panic!("serde_derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if i < trees.len() && is_punct(&trees[i], '<') {
        panic!("serde_derive: generic types are not supported by the vendored shim");
    }
    match kw.as_str() {
        "struct" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Shape::UnitStruct { name },
        },
        "enum" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde_derive: malformed enum"),
        },
        other => panic!("serde_derive: cannot derive for '{other}'"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|k| format!("__f{k}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                format!(
                                    "::serde::Value::Seq(vec![{}])",
                                    binds
                                        .iter()
                                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})])",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __m = __v.as_map().ok_or_else(|| ::serde::Error::expected(\"map for struct {name}\"))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|k| {
                    format!("::serde::Deserialize::from_value(::serde::seq_get(__s, {k})?)?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __s = __v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence for struct {name}\"))?;\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0})", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!("return Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?));")
                            } else {
                                let inits: Vec<String> = (0..*arity)
                                    .map(|k| format!("::serde::Deserialize::from_value(::serde::seq_get(__s, {k})?)?"))
                                    .collect();
                                format!(
                                    "let __s = __payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence for variant {vn}\"))?;\n\
                                     return Ok({name}::{vn}({}));",
                                    inits.join(", ")
                                )
                            };
                            Some(format!("\"{vn}\" => {{ {body} }}"))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(__fm, \"{f}\")?)?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __fm = __payload.as_map().ok_or_else(|| ::serde::Error::expected(\"map for variant {vn}\"))?;\n\
                                     return Ok({name}::{vn} {{ {} }});\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(__s) = __v.as_str() {{\n\
                             match __s {{ {unit} _ => {{}} }}\n\
                         }}\n\
                         if let Some(__m) = __v.as_map() {{\n\
                             if __m.len() == 1 {{\n\
                                 let (__tag, __payload) = (&__m[0].0, &__m[0].1);\n\
                                 let _ = __payload;\n\
                                 match __tag.as_str() {{ {payload} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::expected(\"a variant of {name}\"))\n\
                     }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                payload = payload_arms.join("\n"),
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
