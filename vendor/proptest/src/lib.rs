//! Vendored minimal property-testing harness.
//!
//! The registry is unreachable from the build environment, so this crate
//! reimplements the slice of `proptest`'s API the workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::Index`,
//! `any::<T>()`, the unweighted `prop_oneof!` union, the `proptest!`
//! macro (with `#![proptest_config(...)]`), and the `prop_assert*`
//! family.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Failures panic immediately with the case number and the
//! deterministic per-test seed, which is enough to reproduce (generation is
//! a pure function of the test name and case index).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derives the per-case seed for a named test.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test (capped by the
    /// `PROPTEST_CASES` environment variable when set).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().map_or(cases, |cap| cases.min(cap)),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

/// The `PROPTEST_CASES` environment variable, when set to a positive
/// count. CI's Miri job sets it to shrink every proptest: interpreted
/// execution is orders of magnitude slower than native, and Miri checks
/// each *executed* path for UB — a handful of cases reaches the same
/// paths 64 would.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()?
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value and draws from
    /// it (dependent generation: e.g. a length, then a vector of exactly
    /// that length).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// One boxed arm of a [`Union`]: a generator drawing a `T` from the RNG.
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// An unweighted union of strategies over one value type; each draw picks
/// an arm uniformly. Built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Wraps a nonempty arm list.
    pub fn new(arms: Vec<UnionArm<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one strategy as a union arm (the uniform element type the
    /// `prop_oneof!` macro builds its `vec![...]` from).
    pub fn arm<S>(strategy: S) -> UnionArm<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| strategy.generate(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        (self.arms[arm])(rng)
    }
}

/// Builds an unweighted [`Union`]: each case draws from one of the listed
/// strategies, chosen uniformly. (Real proptest's `weight => strategy`
/// arms are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($strategy)),+])
    };
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

/// Types with a canonical full-domain strategy (for [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning a wide magnitude range.
        let mag = rng.next_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// Full-domain strategy for `T` (`any::<u32>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A length range for collection strategies (mirrors proptest's
        /// `SizeRange` so integer-literal ranges infer as `usize`).
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty length range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(len: usize) -> SizeRange {
                SizeRange {
                    lo: len,
                    hi_inclusive: len,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a random length.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            length: SizeRange,
        }

        /// Generates vectors whose length is drawn from `length` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                length: length.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.length.hi_inclusive - self.length.lo + 1) as u64;
                let len = self.length.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers (`prop::sample::Index`).
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection whose length is only known inside
        /// the test body: draw one with `any::<Index>()`, then project it
        /// with [`Index::index`].
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Maps the drawn value onto `0..len`.
            ///
            /// # Panics
            /// Panics if `len == 0` (an index into nothing).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index into an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }
}

/// Prelude mirroring `proptest::prelude::*` for the supported subset.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let __seed = $crate::TestRng::case_seed(stringify!($name), __case);
                let mut __rng = $crate::TestRng::new(__seed);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (1u64..=5).generate(&mut rng);
            assert!((1..=5).contains(&y));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::new(2);
        let strat = prop::collection::vec((any::<u32>(), 0u8..4), 1..20).prop_map(|v| v.len());
        for _ in 0..100 {
            let len = strat.generate(&mut rng);
            assert!((1..20).contains(&len));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let s1 = TestRng::case_seed("alpha", 3);
        let s2 = TestRng::case_seed("alpha", 3);
        assert_eq!(s1, s2);
        assert_ne!(TestRng::case_seed("alpha", 4), s1);
        assert_ne!(TestRng::case_seed("beta", 3), s1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end, including assume/assert.
        #[test]
        fn macro_smoke(x in 0u32..100, mut ys in prop::collection::vec(any::<u8>(), 0..10)) {
            prop_assume!(x != 13);
            ys.push(x as u8);
            prop_assert!(!ys.is_empty());
            prop_assert_eq!(*ys.last().unwrap(), x as u8);
            prop_assert_ne!(x, 13);
        }
    }
}
