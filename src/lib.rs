//! # gplus-san — facade crate
//!
//! One-stop import surface for the `gplus-san` workspace, a Rust
//! reproduction of *"Evolution of Social-Attribute Networks: Measurements,
//! Modeling, and Implications using Google+"* (Gong et al., IMC 2012).
//!
//! The workspace is organised as:
//!
//! * [`graph`] (`san-graph`) — the Social-Attribute Network data structure,
//! * [`stats`] (`san-stats`) — distributions, fitting, descriptive stats,
//! * [`metrics`] (`san-metrics`) — every measurement in §3/§4/Appendix A,
//! * [`model`] (`san-core`) — the generative models of §5 plus baselines,
//! * [`sim`] (`san-sim`) — the synthetic Google+ dataset and crawler,
//! * [`apps`] (`san-apps`) — SybilLimit / anonymity / recommendation
//!   application benchmarks (§6.2, §7).
//!
//! ## Read path: `SanRead` and frozen snapshots
//!
//! The pipeline is write-once, read-many: generators and the crawler
//! *grow* a mutable [`graph::San`]; every analytic in [`metrics`] and
//! [`apps`] then only *reads* it. All analytic entry points are generic
//! over [`graph::SanRead`], with two interchangeable implementations:
//!
//! * [`graph::San`] — the mutable adjacency-list network,
//! * [`graph::CsrSan`] — an immutable compressed-sparse-row snapshot
//!   (`San::freeze()` / `SanTimeline::snapshot_csr(day)`): sorted
//!   contiguous neighbour rows, binary-search membership, zero-allocation
//!   `Γs(u)`, and `Send + Sync` sharing for parallel metric sweeps.
//!
//! Frozen snapshots also persist: [`graph::store`] is a columnar,
//! versioned, checksummed binary format (`CsrSan::write_to` /
//! `read_from`) plus [`graph::store::SnapshotVault`] directories of
//! persisted days, so evolution sweeps warm-start from disk
//! (`SanTimeline::resume_from_vault`, the `evolve_metric*_from` family in
//! [`metrics`]) instead of replaying the event log from day 0.
//!
//! On top of the store sits the zero-copy read path: [`graph::view`]
//! views a snapshot's raw bytes in place (no column is deserialised),
//! [`graph::mmap`] maps persisted days read-only, and [`serve`]
//! (`san-serve`) is the concurrent serving layer — a `SnapshotServer`
//! with a sharded LRU of mapped days, metered IO
//! ([`graph::meter`]), and a thread-pool driver for mixed-day query
//! streams. [`net`] (`san-net`) puts that server on the wire: a
//! length-prefixed binary protocol (`SANW`) over TCP, a thread-per-core
//! worker pool with three admission gates that shed overload as typed
//! `Busy` responses, and closed/open-loop load generators in
//! `san-bench` (`BENCH_NET.json` records the loopback p50/p99/p999).
//!
//! The serving stack is observable end to end via [`obs`] (`san-obs`):
//! a lock-free [`obs::MetricRegistry`] unifies the vault, serve, and
//! net layers' meters under stable dotted names; a hand-written
//! Prometheus text-exposition encoder feeds both the server's admin
//! HTTP listener (`GET /metrics`, `GET /slowlog`) and the in-protocol
//! SANW `stats` query; and per-request traces with per-stage nanosecond
//! attribution land in a lock-free slow-query ring
//! (`examples/observability.rs` walks the whole loop;
//! `BENCH_OBS.json` records the scrape-encode latency and the
//! traced-vs-untraced overhead).
//!
//! See `examples/` for end-to-end walkthroughs and `crates/san-bench` for
//! the experiment harness that regenerates every figure and table (its
//! `bench_graph` suite measures the San-vs-CsrSan read-path difference).

pub use san_apps as apps;
pub use san_core as model;
pub use san_graph as graph;
pub use san_metrics as metrics;
pub use san_net as net;
pub use san_obs as obs;
pub use san_serve as serve;
pub use san_sim as sim;
pub use san_stats as stats;
