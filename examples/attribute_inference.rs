//! Attribute inference + community detection on a synthetic Google+ —
//! the heterogeneous-network applications of §7 / the SAN framework [17].
//!
//! ```text
//! cargo run --release --example attribute_inference
//! ```

use gplus_san::apps::attr_infer::evaluate_inference;
use gplus_san::graph::AttrType;
use gplus_san::metrics::community::{label_propagation, label_propagation_san};
use gplus_san::sim::GooglePlus;
use gplus_san::stats::SplitRng;

fn main() {
    let data = GooglePlus::at_scale(15).generate(21);
    let san = data.crawl_final().san;
    println!(
        "crawled SAN: {} users, {} links, {} attributes",
        san.num_social_nodes(),
        san.num_social_links(),
        san.num_attr_nodes()
    );

    // 1. Infer hidden attributes from friends (vs the global prior).
    println!("\nleave-one-out attribute inference (friend vote vs global prior):");
    let mut rng = SplitRng::new(1);
    for ty in AttrType::PAPER_TYPES {
        let (vote, prior, n) = evaluate_inference(&san, ty, 500, &mut rng);
        if n == 0 {
            continue;
        }
        println!("  {ty:>9}: friend-vote {vote:.3}  prior {prior:.3}  ({n} users)");
    }

    // 2. Communities with and without the attribute structure.
    let mut rng = SplitRng::new(2);
    let classical = label_propagation(&san, 30, &mut rng);
    let mut rng = SplitRng::new(2);
    let with_attrs = label_propagation_san(&san, 0.5, 30, &mut rng);
    println!("\nlabel propagation:");
    println!(
        "  social links only : {} communities in {} rounds (largest {})",
        classical.count(),
        classical.rounds,
        classical.sizes.iter().max().unwrap_or(&0)
    );
    println!(
        "  + attribute votes : {} communities in {} rounds (largest {})",
        with_attrs.count(),
        with_attrs.rounds,
        with_attrs.sizes.iter().max().unwrap_or(&0)
    );
    println!(
        "(attribute votes reshape the partition around shared foci: faster \
         convergence, the giant social component splits along attributes)"
    );
}
