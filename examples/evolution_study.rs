//! Evolution study: generate a synthetic Google+, crawl it daily, and
//! track the §3 metrics across the three phases — a condensed version of
//! the Fig. 2/4 pipeline.
//!
//! ```text
//! cargo run --release --example evolution_study
//! ```

use gplus_san::metrics::evolution::{Phase, PhaseBounds};
use gplus_san::metrics::reciprocity::global_reciprocity;
use gplus_san::metrics::social_density;
use gplus_san::sim::GooglePlus;

fn main() {
    // A small synthetic Google+: ~4k users across the 98-day timeline.
    let data = GooglePlus::at_scale(15).generate(7);
    println!(
        "ground truth: {} users / {} links; crawl seed {}",
        data.truth.num_social_nodes(),
        data.truth.num_social_links(),
        data.crawl_seed
    );

    let bounds = PhaseBounds::PAPER;
    println!(
        "\n{:>4} {:>6} {:>9} {:>10} {:>12} {:>12}",
        "day", "phase", "users", "links", "density", "reciprocity"
    );
    data.crawl_daily(|day, snap| {
        if day == 0 || day % 7 != 0 {
            return;
        }
        let phase = match bounds.phase_of(day) {
            Phase::I => "I",
            Phase::II => "II",
            Phase::III => "III",
        };
        println!(
            "{day:>4} {phase:>6} {:>9} {:>10} {:>12.3} {:>12.3}",
            snap.san.num_social_nodes(),
            snap.san.num_social_links(),
            social_density(&snap.san),
            global_reciprocity(&snap.san),
        );
    });

    println!("\nwhat to look for (the paper's observations):");
    println!(" * users/links jump in Phase I, stabilise in II, jump again in III");
    println!(" * density dips early in Phase I, recovers, dips again at the public release");
    println!(" * reciprocity drifts down as the network turns publisher-subscriber");
}
