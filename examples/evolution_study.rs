//! Evolution study: generate a synthetic Google+, crawl it daily, and
//! track the §3 metrics across the three phases — a condensed version of
//! the Fig. 2/4 pipeline.
//!
//! ```text
//! cargo run --release --example evolution_study
//! ```

use gplus_san::graph::store::SnapshotVault;
use gplus_san::graph::ShardedCsrSan;
use gplus_san::metrics::clustering::{
    average_clustering_exact, average_clustering_sharded, NodeSet,
};
use gplus_san::metrics::evolution::{
    evolve_metric, evolve_metric_from, evolve_metric_parallel, Phase, PhaseBounds, SnapshotSource,
};
use gplus_san::metrics::reciprocity::global_reciprocity;
use gplus_san::metrics::social_density;
use gplus_san::sim::GooglePlus;

fn main() {
    // A small synthetic Google+: ~4k users across the 98-day timeline.
    let data = GooglePlus::at_scale(15).generate(7);
    println!(
        "ground truth: {} users / {} links; crawl seed {}",
        data.truth.num_social_nodes(),
        data.truth.num_social_links(),
        data.crawl_seed
    );

    let bounds = PhaseBounds::PAPER;
    println!(
        "\n{:>4} {:>6} {:>9} {:>10} {:>12} {:>12}",
        "day", "phase", "users", "links", "density", "reciprocity"
    );
    data.crawl_daily(|day, snap| {
        if day == 0 || day % 7 != 0 {
            return;
        }
        let phase = match bounds.phase_of(day) {
            Phase::I => "I",
            Phase::II => "II",
            Phase::III => "III",
        };
        println!(
            "{day:>4} {phase:>6} {:>9} {:>10} {:>12.3} {:>12.3}",
            snap.san.num_social_nodes(),
            snap.san.num_social_links(),
            social_density(&snap.san),
            global_reciprocity(&snap.san),
        );
    });

    // The same metrics through a frozen CSR snapshot: identical numbers,
    // immutable storage, `Send + Sync` — the form a parallel per-day sweep
    // would fan out across threads.
    let last_day = data.timeline.max_day().expect("nonempty timeline");
    let frozen = data.timeline.snapshot_csr(last_day);
    println!(
        "\nfrozen ground-truth snapshot at day {last_day}: density={:.3} reciprocity={:.3} ({} KiB CSR)",
        social_density(&frozen),
        global_reciprocity(&frozen),
        frozen.heap_bytes() / 1024,
    );

    // Parallel per-day sweep of an expensive metric: delta-frozen
    // snapshots stream through a bounded channel to four workers, so peak
    // memory stays O(threads × E) however long the timeline is.
    let clus = evolve_metric_parallel(&data.timeline, "attr clustering", 14, 4, |_, snap| {
        average_clustering_exact(snap, NodeSet::Attr)
    });
    println!("\nattribute clustering, 4-thread sweep over frozen snapshots:");
    for (day, value) in clus.days.iter().zip(&clus.values) {
        println!("  day {day:>3}: {value:.4}");
    }

    // The other parallelism axis: range-partition the *final* snapshot
    // into edge-balanced shards so one expensive day saturates the
    // machine. Boundaries come from the CSR row offsets, so a handful of
    // hubs never pile into one shard with an equal node share of the
    // tail — the per-shard link counts below should be close.
    let sharded = ShardedCsrSan::from_csr(frozen, 4);
    println!("\nshard-parallel clustering on the day-{last_day} snapshot (4 shards):");
    println!(
        "  social clustering = {:.4} (sequential: {:.4})",
        average_clustering_sharded(&sharded, NodeSet::Social),
        average_clustering_exact(sharded.csr(), NodeSet::Social),
    );
    println!("  per-shard edge balance (nodes / out-links / KiB):");
    for (shard, bytes) in sharded.shards().zip(sharded.shard_bytes()) {
        println!(
            "    shard {}: {:>6} nodes  {:>7} links  {:>5} KiB",
            shard.index(),
            shard.owned_social_nodes(),
            shard.owned_social_links(),
            bytes / 1024,
        );
    }

    // Persistence: save every 14th day's frozen snapshot to a vault
    // (columnar binary files + manifest), then resume a sweep from the
    // middle of the timeline — the vault loads the nearest persisted day
    // and delta-patches forward, so nothing before it is replayed. The
    // resumed series is bit-identical to the same days of a full sweep.
    let vault_dir = std::env::temp_dir().join(format!("gplus-vault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&vault_dir);
    let mut vault = SnapshotVault::create(&vault_dir).expect("create vault");
    let saved = vault
        .save_timeline(&data.timeline, 14)
        .expect("persist snapshots");
    println!(
        "\nvault: persisted {} days {:?} under {} ({} KiB on disk)",
        saved.len(),
        saved,
        vault_dir.display(),
        vault.disk_bytes() / 1024,
    );
    let resume_at = last_day / 2 + 1;
    let resumed = evolve_metric_from(
        SnapshotSource::Vault {
            timeline: &data.timeline,
            vault: &vault,
            start: resume_at,
        },
        "reciprocity",
        7,
        |_, snap| global_reciprocity(snap),
    )
    .expect("vault-resumed sweep");
    let full = evolve_metric(&data.timeline, "reciprocity", 7, |_, snap| {
        global_reciprocity(snap)
    });
    let warm_start = vault.nearest_at_or_before(resume_at).expect("warm start");
    println!(
        "resume at day {resume_at}: warm-started from persisted day {warm_start}, \
         swept {} days (full sweep: {})",
        resumed.days.len(),
        full.days.len(),
    );
    let suffix: Vec<f64> = full
        .days
        .iter()
        .zip(&full.values)
        .filter(|(d, _)| **d >= resume_at)
        .map(|(_, v)| *v)
        .collect();
    assert_eq!(
        resumed.values, suffix,
        "resumed sweep must be bit-identical"
    );
    println!("resumed series is bit-identical to the full sweep's suffix ✓");
    let _ = std::fs::remove_dir_all(&vault_dir);

    println!("\nwhat to look for (the paper's observations):");
    println!(" * users/links jump in Phase I, stabilise in II, jump again in III");
    println!(" * density dips early in Phase I, recovers, dips again at the public release");
    println!(" * reciprocity drifts down as the network turns publisher-subscriber");
}
