//! Sybil defense: evaluate SybilLimit on a real (simulated) network and on
//! two generative stand-ins — the Fig. 19a methodology in miniature, plus
//! the §7 attribute-aware hardening.
//!
//! ```text
//! cargo run --release --example sybil_defense
//! ```

use gplus_san::apps::sybil::{
    attribute_discounted_attack_edges, compromise_uniform, sybil_curve, SybilLimitConfig,
};
use gplus_san::graph::degree::{bound_degrees, to_undirected};
use gplus_san::model::model::{SanModel, SanModelParams};
use gplus_san::model::zhel::generate_zhel;
use gplus_san::sim::GooglePlus;
use gplus_san::stats::SplitRng;

fn main() {
    let data = GooglePlus::at_scale(20).generate(11);
    let google = data.crawl_final().san;
    let (_, ours) = SanModel::new(SanModelParams::paper_default(98, 20))
        .expect("valid")
        .generate(11);
    let (_, zhel) = generate_zhel(98, 20, 11);

    let n = google.num_social_nodes();
    let counts: Vec<usize> = (1..=4).map(|i| n * i / 100).collect();
    let cfg = SybilLimitConfig::default();

    println!("SybilLimit: accepted Sybil identities (degree bound 100, w = 10)");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "compromised", "google+", "our model", "zhel"
    );
    let mut rng = SplitRng::new(99);
    let g = sybil_curve(&google, cfg, &counts, &mut rng);
    let o = sybil_curve(&ours, cfg, &counts, &mut rng);
    let z = sybil_curve(&zhel, cfg, &counts, &mut rng);
    for i in 0..counts.len() {
        println!(
            "{:>12} {:>12} {:>12} {:>12}",
            counts[i], g[i].sybil_identities, o[i].sybil_identities, z[i].sybil_identities
        );
    }

    // §7: discount attack edges whose endpoints share no attribute.
    println!("\nattribute-aware hardening (discount attr-less attack edges to 0.25):");
    let adj = to_undirected(&google);
    let bounded = bound_degrees(&adj, cfg.degree_bound, &mut rng);
    let compromised = compromise_uniform(&google, n / 50, &mut rng);
    let plain = attribute_discounted_attack_edges(&google, &bounded, &compromised, 1.0);
    let hardened = attribute_discounted_attack_edges(&google, &bounded, &compromised, 0.25);
    println!("  effective attack edges: {plain:.0} -> {hardened:.0}");
    println!(
        "  adversary budget shrinks by {:.0}%",
        100.0 * (1.0 - hardened / plain)
    );
}
