//! Observability: run the TCP serving stack with the `san-obs` wiring
//! live — a unified metric registry over the vault/serve/net layers,
//! the admin HTTP listener, the in-protocol SANW `stats` query, and
//! the per-request slow-query ring — then scrape it both ways and
//! show the per-stage latency attribution.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! Set `OBS_SERVE_SECS=30` to keep the server up after the scripted
//! traffic so you can point `curl` or a Prometheus scraper at the
//! printed admin address (`/metrics`, `/slowlog`).

#[cfg(unix)]
use gplus_san::graph::store::SnapshotVault;
#[cfg(unix)]
use gplus_san::net::server::{NetConfig, NetServer};
#[cfg(unix)]
use gplus_san::net::{NetClient, Query, QueryResult, Response};
#[cfg(unix)]
use gplus_san::obs::Stage;
#[cfg(unix)]
use gplus_san::serve::{ServeConfig, SnapshotServer};
#[cfg(unix)]
use gplus_san::sim::GooglePlus;
#[cfg(unix)]
use gplus_san::stats::SplitRng;

#[cfg(not(unix))]
fn main() {
    eprintln!("observability needs a unix host: san-net's server is unix-only");
}

#[cfg(unix)]
fn main() {
    use std::io::{Read, Write};

    // Synthetic Google+ ground truth, persisted every 7th day.
    let data = GooglePlus::at_scale(15).generate(11);
    let dir = std::env::temp_dir().join(format!("san-obs-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut vault = SnapshotVault::create(&dir).expect("create vault");
    let saved = vault.save_timeline(&data.timeline, 7).expect("persist");
    drop(vault);
    let final_day = *saved.last().expect("persisted days");

    // The wired server: snapshot vault → serve layer → TCP front-end,
    // with the admin listener on an ephemeral loopback port.
    let snaps = SnapshotServer::open(&dir, ServeConfig::default()).expect("open vault");
    let net = NetConfig {
        admin: Some("127.0.0.1:0".parse().unwrap()),
        ..NetConfig::default()
    };
    let server = NetServer::serve(snaps, "127.0.0.1:0", net).expect("bind");
    let admin = server.admin_addr().expect("admin listener");
    println!("serving on {}  (admin http on {admin})", server.addr());

    // Scripted traffic: a mixed-day stream with a few typed rejections
    // sprinkled in, so every outcome counter has something to say.
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let mut rng = SplitRng::new(17);
    let mut served = 0u32;
    for i in 0..300u32 {
        let day = rng.below(u64::from(final_day) + 4) as u32;
        let query = match i % 5 {
            0 => Query::Counts,
            1 => Query::Reciprocity,
            2 => Query::Degrees {
                u: rng.below(500) as u32,
            },
            3 => Query::HasLink {
                src: rng.below(300) as u32,
                dst: rng.below(300) as u32,
            },
            // Every 5th query asks for a hostile node id on purpose.
            _ => Query::LocalClustering { u: u32::MAX },
        };
        if matches!(
            client.query(day, query).expect("query"),
            Response::Ok { .. }
        ) {
            served += 1;
        }
    }
    println!("traffic: 300 requests, {served} served, rest typed rejections");

    // Scrape surface 1: the SANW `stats` query — same frame protocol
    // as every other query, so SANW clients need no second socket.
    let text = match client.query(0, Query::Stats).expect("stats") {
        Response::Ok {
            result: QueryResult::Stats(text),
            ..
        } => text,
        other => panic!("unexpected stats response: {other:?}"),
    };
    let families = text.lines().filter(|l| l.starts_with("# TYPE")).count();
    println!(
        "\nSANW stats query: {} bytes of exposition, {families} metric families",
        text.len()
    );
    for line in text.lines().filter(|l| l.starts_with("san_net_responses")) {
        println!("  {line}");
    }

    // Scrape surface 2: the admin HTTP listener — what curl/Prometheus
    // sees. Same registry, so the family set is identical.
    let mut http = std::net::TcpStream::connect(admin).expect("connect admin");
    http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("read");
    let body = response.split_once("\r\n\r\n").expect("http body").1;
    let http_families = body.lines().filter(|l| l.starts_with("# TYPE")).count();
    println!(
        "GET /metrics: {} bytes, {http_families} metric families",
        body.len()
    );
    assert_eq!(families, http_families, "scrape surfaces disagree");

    // The slow-query ring: per-stage nanosecond attribution for the
    // slowest recent requests.
    println!("\nslowest traced requests (per-stage attribution):");
    for entry in server.trace_ring().slowest(5) {
        let mut stages = String::new();
        for stage in Stage::all() {
            stages.push_str(&format!(
                " {}={}µs",
                stage.name(),
                entry.stage_nanos(stage) / 1_000
            ));
        }
        println!(
            "  id={} day={} query={} total={}µs {stages}",
            entry.request_id,
            entry.day,
            entry.query_id,
            entry.total_nanos / 1_000,
        );
    }

    // Optional interactive hold for external scrapers.
    if let Some(secs) = std::env::var("OBS_SERVE_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        println!("\nholding for {secs}s — try: curl http://{admin}/metrics");
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
