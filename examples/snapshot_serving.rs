//! Snapshot serving: persist a growing SAN's daily snapshots to a vault,
//! then serve a mixed-day query stream to a pool of workers through the
//! `san-serve` layer — zero-copy mmap views, a sharded LRU, and full IO
//! metering — and verify the served results match eager loads exactly.
//!
//! ```text
//! cargo run --release --example snapshot_serving
//! ```

#[cfg(unix)]
use gplus_san::graph::store::SnapshotVault;
#[cfg(unix)]
use gplus_san::graph::SanRead;
#[cfg(unix)]
use gplus_san::metrics::clustering::{average_clustering_exact, NodeSet};
#[cfg(unix)]
use gplus_san::metrics::reciprocity::global_reciprocity;
#[cfg(unix)]
use gplus_san::serve::{QueryOutcome, ServeConfig, SnapshotServer};
#[cfg(unix)]
use gplus_san::sim::GooglePlus;
#[cfg(unix)]
use gplus_san::stats::SplitRng;

#[cfg(not(unix))]
fn main() {
    eprintln!("snapshot serving needs a unix host: san-serve is mmap-backed");
}

#[cfg(unix)]
fn main() {
    // A synthetic Google+ ground truth across the 98-day timeline.
    let data = GooglePlus::at_scale(15).generate(7);
    let timeline = &data.timeline;
    let final_day = timeline.max_day().expect("nonempty timeline");
    println!(
        "ground truth: {} users / {} links over {} days",
        data.truth.num_social_nodes(),
        data.truth.num_social_links(),
        final_day + 1,
    );

    // Persist every 7th day (plus the final day) to a vault on disk.
    let dir = std::env::temp_dir().join(format!("san-serve-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut vault = SnapshotVault::create(&dir).expect("create vault");
    let saved = vault.save_timeline(timeline, 7).expect("persist timeline");
    println!(
        "vault: {} days persisted, {} KiB on disk, write p50 {} µs",
        saved.len(),
        vault.disk_bytes() / 1024,
        vault.metrics().write_latency().median_nanos() / 1_000,
    );

    // Serve a mixed-day query stream: 200 queries over the whole day
    // range, 4 workers, each computing reciprocity + clustering on
    // whatever persisted day serves its requested day.
    let server = SnapshotServer::open(&dir, ServeConfig::default()).expect("open server");
    let mut rng = SplitRng::new(3);
    let queries: Vec<(u32, usize)> = (0..200)
        .map(|i| (rng.below(u64::from(final_day) + 10) as u32, i))
        .collect();
    let outcomes = server.for_each_query(4, &queries, |_, day_served, view| {
        (
            day_served,
            view.num_social_nodes(),
            global_reciprocity(view),
            average_clustering_exact(view, NodeSet::Social),
        )
    });

    let served = outcomes.iter().filter(|o| o.value().is_some()).count();
    println!("\nqueries: {} served of {}", served, queries.len());
    let m = server.metrics();
    println!(
        "cache: {} hits / {} misses / {} evictions; {} KiB mapped, open+validate p50 {} µs, hit-path queries {}",
        m.hits(),
        m.misses(),
        m.evictions(),
        m.io().read_bytes() / 1024,
        m.io().read_latency().median_nanos() / 1_000,
        m.queries(),
    );

    // Spot-verify: served results are bit-identical to eager loads.
    let mut checked = 0;
    for (outcome, &(day, _)) in outcomes.iter().zip(&queries).take(40) {
        if let QueryOutcome::Served {
            day_served, value, ..
        } = outcome
        {
            let loaded = vault.load_day(*day_served).expect("eager load");
            assert_eq!(value.1, loaded.num_social_nodes(), "day {day}");
            assert_eq!(
                value.2.to_bits(),
                global_reciprocity(&*loaded).to_bits(),
                "day {day}"
            );
            assert_eq!(
                value.3.to_bits(),
                average_clustering_exact(&*loaded, NodeSet::Social).to_bits(),
                "day {day}"
            );
            checked += 1;
        }
    }
    println!("verified {checked} served queries bit-identical to eager loads");

    // The last persisted snapshot through both read paths, for scale.
    let last = *saved.last().expect("persisted days");
    let handle = server.get(last).expect("get").expect("served");
    println!(
        "\nday {last} via mmap view: {} users, reciprocity {:.3}, clustering {:.3} (0 bytes deserialised)",
        handle.view().num_social_nodes(),
        global_reciprocity(&handle.view()),
        average_clustering_exact(&handle.view(), NodeSet::Social),
    );

    let _ = std::fs::remove_dir_all(&dir);
}
