//! Friend recommendation: the §7 implication that attribute features
//! (especially shared employers) improve recommenders, evaluated by
//! replaying real link arrivals.
//!
//! ```text
//! cargo run --release --example friend_recommendation
//! ```

use gplus_san::apps::recommend::{evaluate_precision, recommend, RecommenderWeights};
use gplus_san::sim::GooglePlus;
use gplus_san::stats::SplitRng;

fn main() {
    let data = GooglePlus::at_scale(20).generate(5);
    // Train/test split in time: recommend from the day-70 network, grade
    // against links that appear by day 98.
    let earlier = data.timeline.snapshot_at(70);
    let later = &data.truth;
    println!(
        "recommending from day 70 ({} users) against day 98 ({} links added)",
        earlier.num_social_nodes(),
        later.num_social_links() - earlier.num_social_links()
    );

    let mut rng = SplitRng::new(1);
    for (name, weights) in [
        ("structure-only", RecommenderWeights::structure_only()),
        ("attribute-aware", RecommenderWeights::attribute_aware()),
    ] {
        let (precision, users) = evaluate_precision(&earlier, later, 5, weights, 400, &mut rng);
        println!("{name:>16}: precision@5 = {precision:.4} over {users} active users");
    }

    // Show one concrete recommendation list.
    let someone = earlier
        .social_nodes()
        .find(|&u| earlier.attr_degree(u) > 0 && earlier.out_degree(u) >= 2)
        .expect("a user with attributes and links exists");
    println!("\nsample recommendations for {someone}:");
    for (v, score) in recommend(&earlier, someone, 5, RecommenderWeights::attribute_aware()) {
        let shares = earlier.common_attrs(someone, v);
        let friends = earlier.common_social_neighbors(someone, v);
        println!("  {v}: score {score:.1} ({friends} common friends, {shares} common attrs)");
    }
}
