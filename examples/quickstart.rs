//! Quickstart: build a SAN by hand, measure it, grow a synthetic one.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gplus_san::graph::{AttrType, San};
use gplus_san::metrics::clustering::{average_clustering_exact, NodeSet};
use gplus_san::metrics::reciprocity::global_reciprocity;
use gplus_san::model::model::{SanModel, SanModelParams};
use gplus_san::stats::fit_degree_distribution;

fn main() {
    // 1. A Social-Attribute Network by hand -----------------------------
    let mut san = San::new();
    let alice = san.add_social_node();
    let bob = san.add_social_node();
    let carol = san.add_social_node();
    let google = san.add_attr_node(AttrType::Employer);

    san.add_social_link(alice, bob); // alice follows bob
    san.add_social_link(bob, alice); // …and bob follows back
    san.add_social_link(carol, bob);
    san.add_attr_link(alice, google); // alice and carol both work at…
    san.add_attr_link(carol, google);

    println!(
        "hand-built SAN: {} users, {} directed links, {} attributes",
        san.num_social_nodes(),
        san.num_social_links(),
        san.num_attr_nodes()
    );
    println!("  reciprocity          = {:.2}", global_reciprocity(&san));
    println!(
        "  alice/carol share {} attribute(s) (the a(u,v) of LAPA)",
        san.common_attrs(alice, carol)
    );
    println!(
        "  avg clustering       = {:.3}",
        average_clustering_exact(&san, NodeSet::Social)
    );

    // 2. Grow a network with the paper's generative model ----------------
    // Truncated-normal lifetimes + LAPA + RR-SAN: out-degrees come out
    // lognormal (Theorem 1), attribute sizes power-law (Theorem 2).
    let params = SanModelParams::paper_default(/*days=*/ 90, /*arrivals/day=*/ 25);
    let model = SanModel::new(params).expect("valid parameters");
    let (timeline, grown) = model.generate(/*seed=*/ 42);

    println!(
        "\ngenerated SAN: {} users, {} links, {} attribute nodes over {} days",
        grown.num_social_nodes(),
        grown.num_social_links(),
        grown.num_attr_nodes(),
        timeline.max_day().unwrap_or(0)
    );

    // 3. Which family fits the out-degrees? ------------------------------
    let out_degrees: Vec<u64> = grown
        .social_nodes()
        .map(|u| grown.out_degree(u) as u64)
        .collect();
    let fit = fit_degree_distribution(&out_degrees).expect("plenty of data");
    println!(
        "  out-degree best fit  = {} (lognormal mu={:.2}, sigma={:.2}; power-law alpha={:.2})",
        fit.family, fit.mu, fit.sigma, fit.alpha
    );

    // 4. Freeze for measurement ------------------------------------------
    // Every analytic is generic over `SanRead`, so the frozen CSR snapshot
    // (sorted rows, binary-search membership, Send + Sync) is a drop-in
    // replacement for the mutable graph — with identical results.
    let frozen = grown.freeze();
    let c_frozen = average_clustering_exact(&frozen, NodeSet::Social);
    let c_live = average_clustering_exact(&grown, NodeSet::Social);
    assert!((c_frozen - c_live).abs() < 1e-15);
    println!(
        "  frozen CSR snapshot  = {} KiB, avg clustering {:.4} (same as live)",
        frozen.heap_bytes() / 1024,
        c_frozen
    );
}
